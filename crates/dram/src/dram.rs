//! The device façade: channel routing, completions, statistics.

use crate::address::decode;
use crate::channel::{Channel, Pending};
use crate::config::DramConfig;
use crate::stats::{BandwidthTrace, DramStats};
use mnpu_probe::{Event, NullProbe, Probe};
use mnpu_snapshot::{Reader, SnapError, Writer};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// A serviced transaction, returned by [`Dram::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Caller-supplied tag (e.g. a tile or walker identifier).
    pub meta: u64,
    /// Requesting core.
    pub core: usize,
    /// Physical address of the transaction.
    pub addr: u64,
    /// `true` for writes.
    pub is_write: bool,
    /// Device cycle at which the data burst finished.
    pub completed_at: u64,
}

/// Why [`Dram::try_enqueue`] rejected a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The target channel's transaction queue is full; retry after the next
    /// completion or scheduling event.
    QueueFull {
        /// Index of the saturated channel.
        channel: usize,
    },
}

impl fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnqueueError::QueueFull { channel } => {
                write!(f, "transaction queue of channel {channel} is full")
            }
        }
    }
}

impl Error for EnqueueError {}

/// A multi-channel DRAM device with per-core channel partitioning.
///
/// Drive it with three calls:
///
/// * [`Dram::try_enqueue`] — submit a 64-byte transaction;
/// * [`Dram::next_event`] — the next cycle at which the device state changes;
/// * [`Dram::advance`] — move time forward, returning finished transactions.
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    channels: Vec<Channel>,
    core_channels: Vec<Vec<usize>>,
    /// The full channel index set — the default subset for unpartitioned
    /// cores, precomputed so address decode never allocates.
    all_channels: Vec<usize>,
    /// In-flight data bursts keyed `(completed_at, slot)`. A heap (not a
    /// per-channel [`crate::MonotonicQueue`]) on purpose: `advance` peeks
    /// this on *every* tick, and a heap peek is one load where the lane
    /// scan is O(channels) — measured slower at this call frequency.
    in_flight: BinaryHeap<Reverse<(u64, u64)>>,
    in_flight_data: Vec<Option<Completion>>,
    free_slots: Vec<usize>,
    per_core_bytes: Vec<u64>,
    trace: Option<BandwidthTrace>,
    now: u64,
    pending_count: usize,
    /// Reusable buffer for commands committed within one `advance` call;
    /// kept across calls so the steady state allocates nothing.
    scratch_committed: Vec<Completion>,
    /// Per-channel attention cache: the next cycle at which the channel's
    /// `advance` can change any state ([`Channel::next_attention`]).
    /// `advance_into_probed` skips channels whose cached cycle lies beyond
    /// `now` — the skipped call is a provable no-op. Refreshed after every
    /// advance of the channel; an enqueue stores the `0` sentinel ("attend
    /// at the next tick"), which doubles as the dirty flag so the per-wake
    /// scan reads one word per channel. `0` can never be a live skip
    /// threshold (`0 > now` is false for every clock value).
    ch_att: Vec<Cell<u64>>,
    /// Per-channel cache of [`Channel::ea_component`] (`u64::MAX` = idle),
    /// so [`Dram::next_event`] reads one word per channel instead of
    /// re-deriving the scheduler pick. Refreshed after every advance of
    /// the channel; an enqueue stores the `0` sentinel ("stale") and
    /// `next_event` recomputes lazily through the `Cell` (an enqueue can
    /// land between an advance and the next-event query). A legitimately
    /// zero earliest action only exists at cycle 0, where the recompute
    /// returns the same value.
    ch_ea: Vec<Cell<u64>>,
}

impl Dram {
    /// Create a device.
    ///
    /// Setting `MNPU_NO_FASTFWD=1` in the environment forces
    /// [`DramConfig::fastfwd`] off for every device built afterwards — the
    /// one-run bisection switch for any suspected fast-path divergence
    /// (see EXPERIMENTS.md). The fast path is bit-exact, so flipping it
    /// must never change a report; only wall-clock time moves.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new(mut config: DramConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid DRAM config: {e}");
        }
        if std::env::var_os("MNPU_NO_FASTFWD").is_some_and(|v| v != "0") {
            config.fastfwd = false;
        }
        let channels: Vec<Channel> = (0..config.channels).map(|_| Channel::new(&config)).collect();
        let ch_att = channels.iter().map(|c| Cell::new(c.next_attention())).collect();
        let ch_ea = channels.iter().map(|c| Cell::new(c.ea_component())).collect();
        Dram {
            channels,
            core_channels: Vec::new(),
            all_channels: (0..config.channels).collect(),
            in_flight: BinaryHeap::new(),
            in_flight_data: Vec::new(),
            free_slots: Vec::new(),
            per_core_bytes: Vec::new(),
            trace: None,
            now: 0,
            pending_count: 0,
            scratch_committed: Vec::new(),
            ch_att,
            ch_ea,
            config,
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Restrict `core` to a subset of channels (bandwidth partitioning).
    ///
    /// Cores default to all channels (full sharing). Subsets of different
    /// cores may overlap arbitrarily.
    ///
    /// # Panics
    ///
    /// Panics if the subset is empty or names an out-of-range channel.
    pub fn set_core_channels(&mut self, core: usize, channels: Vec<usize>) {
        assert!(!channels.is_empty(), "channel subset must not be empty");
        assert!(channels.iter().all(|&c| c < self.config.channels), "channel index out of range");
        if self.core_channels.len() <= core {
            self.core_channels.resize(core + 1, Vec::new());
        }
        self.core_channels[core] = channels;
    }

    fn subset_of(&self, core: usize) -> &[usize] {
        match self.core_channels.get(core) {
            Some(v) if !v.is_empty() => v,
            _ => &self.all_channels,
        }
    }

    /// Enable windowed bandwidth tracing (see [`BandwidthTrace`]).
    pub fn enable_trace(&mut self, window: u64, cores: usize) {
        self.trace = Some(BandwidthTrace::new(window, cores));
    }

    /// The bandwidth trace, if enabled.
    pub fn trace(&self) -> Option<&BandwidthTrace> {
        self.trace.as_ref()
    }

    /// Number of transactions enqueued or in flight.
    pub fn pending(&self) -> usize {
        self.pending_count
    }

    /// Submit a 64-byte transaction at device cycle `now`.
    ///
    /// `meta` is an opaque tag returned in the [`Completion`].
    ///
    /// # Errors
    ///
    /// [`EnqueueError::QueueFull`] when the target channel queue is
    /// saturated — the caller should retry after the next event.
    pub fn try_enqueue(
        &mut self,
        now: u64,
        core: usize,
        addr: u64,
        is_write: bool,
        meta: u64,
    ) -> Result<(), EnqueueError> {
        self.try_enqueue_probed(now, core, addr, is_write, meta, &mut NullProbe)
    }

    /// [`Dram::try_enqueue`] with an observability probe: on acceptance it
    /// emits [`Event::DramIssue`] carrying the target channel's queue
    /// occupancy (reorder-window pressure). With [`NullProbe`] this
    /// monomorphizes to exactly the unprobed path.
    ///
    /// # Errors
    ///
    /// [`EnqueueError::QueueFull`] when the target channel queue is
    /// saturated — the caller should retry after the next event.
    pub fn try_enqueue_probed<P: Probe>(
        &mut self,
        now: u64,
        core: usize,
        addr: u64,
        is_write: bool,
        meta: u64,
        probe: &mut P,
    ) -> Result<(), EnqueueError> {
        let decoded = decode(addr, &self.config, self.subset_of(core));
        let ch = decoded.channel;
        let flat = decoded.flat_bank(&self.config) as u32;
        let p = Pending { meta, core, addr, decoded, flat, is_write, arrival: now, bypassed: 0 };
        if !self.channels[ch].enqueue(p) {
            return Err(EnqueueError::QueueFull { channel: ch });
        }
        // `0` sentinel: attend this channel at the next tick (the arrival
        // may be committable immediately) and recompute its earliest
        // action lazily.
        self.ch_att[ch].set(0);
        self.ch_ea[ch].set(0);
        self.pending_count += 1;
        if P::ENABLED {
            probe.record(
                now,
                Event::DramIssue { channel: ch, queue_depth: self.channels[ch].queue_len() },
            );
        }
        Ok(())
    }

    /// `true` when a transaction from `core` to `addr` can be accepted now.
    pub fn can_accept(&self, core: usize, addr: u64) -> bool {
        let decoded = decode(addr, &self.config, self.subset_of(core));
        self.channels[decoded.channel].has_room()
    }

    /// Advance the device clock to `now` (monotone non-decreasing), commit
    /// every command that becomes legal, and return the transactions whose
    /// data finished by `now`, ordered by completion cycle.
    ///
    /// Convenience wrapper around [`Dram::advance_into`]; hot callers should
    /// pass a reused buffer to `advance_into` instead.
    pub fn advance(&mut self, now: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        self.advance_into(now, &mut done);
        done
    }

    /// [`Dram::advance`], appending completions to a caller-owned buffer so
    /// the per-tick path allocates nothing.
    pub fn advance_into(&mut self, now: u64, out: &mut Vec<Completion>) {
        self.advance_into_probed(now, out, &mut NullProbe);
    }

    /// [`Dram::advance_into`] with an observability probe: each committed
    /// command emits its row-buffer outcome (hit / miss / conflict, with
    /// queue residency) and each all-bank refresh is reported. With
    /// [`NullProbe`] this monomorphizes to exactly the unprobed path.
    pub fn advance_into_probed<P: Probe>(
        &mut self,
        now: u64,
        out: &mut Vec<Completion>,
        probe: &mut P,
    ) {
        debug_assert!(now >= self.now, "clock must be monotone");
        self.now = self.now.max(now);

        let mut committed = std::mem::take(&mut self.scratch_committed);
        for i in 0..self.channels.len() {
            // Attention filter: a channel whose cached attention cycle lies
            // beyond `now` has no run slot, no actionable candidate and no
            // due refresh — its `advance_probed` would be a pure no-op, so
            // the call is skipped outright. An enqueue stores 0 (never
            // beyond `now`), so freshly fed channels are always attended.
            // This is what turns the per-wake cost from O(channels) into
            // O(channels with work).
            if self.ch_att[i].get() > now {
                continue;
            }
            let ch = &mut self.channels[i];
            ch.advance_probed(now, &mut committed, probe, i);
            self.ch_att[i].set(ch.next_attention());
            self.ch_ea[i].set(ch.ea_component());
            for c in committed.drain(..) {
                // Account bytes at commit time (the data burst is scheduled).
                if self.per_core_bytes.len() <= c.core {
                    self.per_core_bytes.resize(c.core + 1, 0);
                }
                self.per_core_bytes[c.core] += crate::address::TRANSACTION_BYTES;
                if let Some(t) = &mut self.trace {
                    t.record(c.completed_at, c.core, crate::address::TRANSACTION_BYTES);
                }
                let slot = match self.free_slots.pop() {
                    Some(s) => {
                        self.in_flight_data[s] = Some(c);
                        s
                    }
                    None => {
                        self.in_flight_data.push(Some(c));
                        self.in_flight_data.len() - 1
                    }
                };
                self.in_flight.push(Reverse((c.completed_at, slot as u64)));
            }
        }
        self.scratch_committed = committed;

        while let Some(&Reverse((t, slot))) = self.in_flight.peek() {
            if t > now {
                break;
            }
            self.in_flight.pop();
            let c = self.in_flight_data[slot as usize].take().expect("slot occupied");
            self.free_slots.push(slot as usize);
            self.pending_count -= 1;
            out.push(c);
        }
    }

    /// The next cycle at which the device changes state: a pending data
    /// burst completes or a channel can commit another command. `None` when
    /// fully idle.
    pub fn next_event(&self) -> Option<u64> {
        let mut next: Option<u64> = self.in_flight.peek().map(|&Reverse((t, _))| t);
        for (i, ch) in self.channels.iter().enumerate() {
            // One cached word per channel instead of re-deriving the
            // scheduler pick; an enqueue since the last advance stores the
            // 0 ("stale") sentinel and the entry is refilled here (through
            // the `Cell`). The refresh-due branch of
            // `Channel::earliest_action` has no cached counterpart because
            // `next_refresh > self.now` holds for every channel between
            // `advance` calls: the attention filter forces an advance
            // (which pushes the deadline out) before a due refresh can be
            // observed here.
            let mut t = self.ch_ea[i].get();
            if t == 0 {
                t = ch.ea_component();
                self.ch_ea[i].set(t);
            }
            if t != u64::MAX {
                let t = t.max(self.now);
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            }
        }
        // Never return a cycle in the past.
        next.map(|t| t.max(self.now + 1))
    }

    /// [`Dram::next_event`] recomputed from scratch, bypassing every
    /// channel's memoized scheduler pick. Exists solely so property tests
    /// can check the cached answer against a brute-force rescan; not part
    /// of the stable API.
    #[doc(hidden)]
    pub fn next_event_uncached(&self) -> Option<u64> {
        let mut next: Option<u64> = self.in_flight.peek().map(|&Reverse((t, _))| t);
        for ch in &self.channels {
            if let Some(t) = ch.earliest_action_uncached(self.now) {
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            }
        }
        next.map(|t| t.max(self.now + 1))
    }

    /// Commits retired through the steady-state fast path, summed over
    /// channels. Diagnostic for equivalence tests and benches — never part
    /// of [`DramStats`] (the fast path must not change any reported field).
    #[doc(hidden)]
    pub fn fastfwd_commits(&self) -> u64 {
        self.channels.iter().map(|c| c.fastfwd_commits()).sum()
    }

    /// Serialize all mutable device state: every channel, the in-flight
    /// burst buffer (verbatim, including slot numbering and the free-slot
    /// stack — slot numbers tie-break equal completion cycles, so the
    /// allocation history is observable and must survive restore
    /// bit-exactly), byte accounting, the bandwidth trace and the clock.
    /// Structural state (config, channel partitions) is excluded: restore
    /// targets a device built from the same configuration.
    pub fn save_state(&self, w: &mut Writer) {
        w.tag(0xD0);
        w.usize(self.channels.len());
        for ch in &self.channels {
            ch.save_state(w);
        }
        // The heap's keys, sorted: `(completed_at, slot)` is unique per
        // entry, so heap pop order is a pure function of this set.
        let mut keys: Vec<(u64, u64)> = self.in_flight.iter().map(|&Reverse(k)| k).collect();
        keys.sort_unstable();
        w.seq(&keys, |w, &(t, slot)| {
            w.u64(t);
            w.u64(slot);
        });
        w.seq(&self.in_flight_data, |w, slot| {
            w.opt(slot, |w, c| {
                w.u64(c.meta);
                w.usize(c.core);
                w.u64(c.addr);
                w.bool(c.is_write);
                w.u64(c.completed_at);
            });
        });
        w.seq(&self.free_slots, |w, &s| w.usize(s));
        w.seq(&self.per_core_bytes, |w, &b| w.u64(b));
        w.opt(&self.trace, |w, t| t.save_state(w));
        w.u64(self.now);
        w.usize(self.pending_count);
        w.seq(&self.ch_att, |w, c| w.u64(c.get()));
        w.seq(&self.ch_ea, |w, c| w.u64(c.get()));
    }

    /// Restore state saved by [`Dram::save_state`] into a device built from
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or shaped for a
    /// different configuration (channel/bank counts disagree).
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(0xD0)?;
        if r.usize()? != self.channels.len() {
            return Err(SnapError::BadValue("channel count mismatch"));
        }
        for ch in &mut self.channels {
            ch.load_state(r)?;
        }
        let keys = r.seq(|r| Ok((r.u64()?, r.u64()?)))?;
        self.in_flight = keys.into_iter().map(Reverse).collect();
        self.in_flight_data = r.seq(|r| {
            r.opt(|r| {
                Ok(Completion {
                    meta: r.u64()?,
                    core: r.usize()?,
                    addr: r.u64()?,
                    is_write: r.bool()?,
                    completed_at: r.u64()?,
                })
            })
        })?;
        self.free_slots = r.seq(|r| r.usize())?;
        self.per_core_bytes = r.seq(|r| r.u64())?;
        let trace = r.opt(BandwidthTrace::load_state)?;
        if trace.is_some() != self.trace.is_some() {
            return Err(SnapError::BadValue("bandwidth trace enablement mismatch"));
        }
        self.trace = trace;
        self.now = r.u64()?;
        self.pending_count = r.usize()?;
        let att = r.seq(|r| r.u64())?;
        let ea = r.seq(|r| r.u64())?;
        if att.len() != self.ch_att.len() || ea.len() != self.ch_ea.len() {
            return Err(SnapError::BadValue("attention cache length mismatch"));
        }
        for (c, v) in self.ch_att.iter().zip(att) {
            c.set(v);
        }
        for (c, v) in self.ch_ea.iter().zip(ea) {
            c.set(v);
        }
        self.scratch_committed.clear();
        Ok(())
    }

    /// Snapshot of device statistics.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats {
            per_channel: self.channels.iter().map(|c| c.stats().clone()).collect(),
            per_core_bytes: self.per_core_bytes.clone(),
            ..Default::default()
        };
        for c in &s.per_channel {
            s.total.merge(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(dram: &mut Dram, mut now: u64) -> (Vec<Completion>, u64) {
        let mut all = Vec::new();
        loop {
            all.extend(dram.advance(now));
            match dram.next_event() {
                Some(t) => now = t,
                None => break,
            }
        }
        (all, now)
    }

    /// Enqueue with retry, advancing the clock whenever a queue is full.
    fn enqueue_all(dram: &mut Dram, reqs: &[(usize, u64, bool, u64)]) -> Vec<Completion> {
        let mut all = Vec::new();
        let mut now = 0;
        for &(core, addr, is_write, meta) in reqs {
            while dram.try_enqueue(now, core, addr, is_write, meta).is_err() {
                now = dram.next_event().expect("device must drain");
                all.extend(dram.advance(now));
            }
        }
        let (rest, _) = run_until_idle(dram, now);
        all.extend(rest);
        all
    }

    #[test]
    fn single_read_completes() {
        let mut d = Dram::new(DramConfig::hbm2(8));
        d.try_enqueue(0, 0, 4096, false, 7).unwrap();
        let (done, _) = run_until_idle(&mut d, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].meta, 7);
        assert!(!done[0].is_write);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn sequential_stream_spreads_over_channels() {
        let mut d = Dram::new(DramConfig::hbm2(8));
        for i in 0..64u64 {
            d.try_enqueue(0, 0, i * 64, false, i).unwrap();
        }
        let (done, _) = run_until_idle(&mut d, 0);
        assert_eq!(done.len(), 64);
        let s = d.stats();
        for ch in &s.per_channel {
            assert_eq!(ch.reads, 8, "each channel gets 64/8 reads");
        }
    }

    #[test]
    fn partitioned_core_only_uses_its_channels() {
        let mut d = Dram::new(DramConfig::hbm2(8));
        d.set_core_channels(0, vec![0, 1]);
        for i in 0..32u64 {
            d.try_enqueue(0, 0, i * 64, false, i).unwrap();
        }
        let (done, _) = run_until_idle(&mut d, 0);
        assert_eq!(done.len(), 32);
        let s = d.stats();
        assert_eq!(s.per_channel[0].reads + s.per_channel[1].reads, 32);
        for ch in 2..8 {
            assert_eq!(s.per_channel[ch].reads, 0);
        }
    }

    #[test]
    fn more_channels_finish_a_burst_faster() {
        let burst: Vec<(usize, u64, bool, u64)> =
            (0..256u64).map(|i| (0usize, i * 64, false, i)).collect();
        let mut finish = Vec::new();
        for n in [1usize, 4, 8] {
            let mut d = Dram::new(DramConfig::hbm2(n));
            let done = enqueue_all(&mut d, &burst);
            finish.push(done.iter().map(|c| c.completed_at).max().unwrap());
        }
        assert!(finish[0] > finish[1] && finish[1] > finish[2], "{finish:?}");
        // 8 channels should be roughly 8x the single channel throughput.
        assert!(finish[0] as f64 / finish[2] as f64 > 4.0, "{finish:?}");
    }

    #[test]
    fn queue_full_surfaces_error() {
        let cfg = DramConfig { queue_depth: 2, ..DramConfig::hbm2(1) };
        let mut d = Dram::new(cfg);
        d.try_enqueue(0, 0, 0, false, 0).unwrap();
        d.try_enqueue(0, 0, 64, false, 1).unwrap();
        let err = d.try_enqueue(0, 0, 128, false, 2).unwrap_err();
        assert_eq!(err, EnqueueError::QueueFull { channel: 0 });
        assert!(!d.can_accept(0, 128));
        // After draining, the queue accepts again.
        let _ = run_until_idle(&mut d, 0);
        assert!(d.can_accept(0, 128));
    }

    #[test]
    fn per_core_byte_accounting() {
        let mut d = Dram::new(DramConfig::hbm2(4));
        for i in 0..10u64 {
            d.try_enqueue(0, 0, i * 64, false, i).unwrap();
            d.try_enqueue(0, 1, (1 << 20) + i * 64, true, 100 + i).unwrap();
        }
        let _ = run_until_idle(&mut d, 0);
        let s = d.stats();
        assert_eq!(s.per_core_bytes[0], 640);
        assert_eq!(s.per_core_bytes[1], 640);
        assert_eq!(s.total.reads, 10);
        assert_eq!(s.total.writes, 10);
    }

    #[test]
    fn trace_records_completions() {
        let mut d = Dram::new(DramConfig::hbm2(4));
        d.enable_trace(100, 2);
        for i in 0..16u64 {
            d.try_enqueue(0, 0, i * 64, false, i).unwrap();
        }
        let _ = run_until_idle(&mut d, 0);
        let t = d.trace().unwrap();
        let total: u64 = t.core_series(0).iter().sum();
        assert_eq!(total, 16 * 64);
    }

    #[test]
    fn completions_are_time_ordered() {
        let mut d = Dram::new(DramConfig::hbm2(2));
        let reqs: Vec<(usize, u64, bool, u64)> =
            (0..100u64).map(|i| (0usize, i * 6400, i % 3 == 0, i)).collect();
        let done = enqueue_all(&mut d, &reqs);
        assert_eq!(done.len(), 100);
        for w in done.windows(2) {
            assert!(w[0].completed_at <= w[1].completed_at);
        }
    }

    #[test]
    fn contention_raises_latency() {
        // Two cores sharing one channel see higher mean latency than one
        // core alone — the basic premise of the whole study.
        let solo = {
            let mut d = Dram::new(DramConfig::hbm2(1));
            let reqs: Vec<(usize, u64, bool, u64)> =
                (0..48u64).map(|i| (0usize, i * 64, false, i)).collect();
            let _ = enqueue_all(&mut d, &reqs);
            d.stats().total.mean_latency()
        };
        let shared = {
            let mut d = Dram::new(DramConfig::hbm2(1));
            let reqs: Vec<(usize, u64, bool, u64)> = (0..48u64)
                .flat_map(|i| {
                    [(0usize, i * 64, false, i), (1usize, (1 << 22) + i * 64, false, 100 + i)]
                })
                .collect();
            let _ = enqueue_all(&mut d, &reqs);
            d.stats().total.mean_latency()
        };
        assert!(shared > solo, "shared {shared} vs solo {solo}");
    }

    #[test]
    #[should_panic(expected = "invalid DRAM config")]
    fn invalid_config_panics() {
        let mut c = DramConfig::hbm2(8);
        c.channels = 0;
        let _ = Dram::new(c);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::SchedPolicy;

    #[test]
    fn fcfs_never_reorders() {
        // Interleave row-conflicting and row-hitting requests; under strict
        // FCFS completions come back in arrival order.
        let mut cfg = DramConfig::hbm2(1);
        cfg.policy = SchedPolicy::Fcfs;
        let mut d = Dram::new(cfg);
        for i in 0..32u64 {
            // Alternate two far-apart regions to force conflicts.
            let addr = if i % 2 == 0 { i * 64 } else { (1 << 26) + i * 64 };
            d.try_enqueue(0, 0, addr, false, i).unwrap();
        }
        let mut now = 0;
        let mut done = Vec::new();
        loop {
            done.extend(d.advance(now));
            match d.next_event() {
                Some(t) => now = t,
                None => break,
            }
        }
        let metas: Vec<u64> = done.iter().map(|c| c.meta).collect();
        assert_eq!(metas, (0..32).collect::<Vec<u64>>(), "strict arrival order");
    }

    #[test]
    fn frfcfs_beats_fcfs_on_mixed_pattern() {
        let run = |policy: SchedPolicy| {
            let mut cfg = DramConfig::hbm2(1);
            cfg.policy = policy;
            let mut d = Dram::new(cfg);
            for i in 0..48u64 {
                let addr = if i % 3 == 0 { (1 << 26) + i * 64 } else { i * 64 };
                d.try_enqueue(0, 0, addr, false, i).unwrap();
            }
            let mut now = 0;
            let mut last = 0;
            loop {
                for c in d.advance(now) {
                    last = last.max(c.completed_at);
                }
                match d.next_event() {
                    Some(t) => now = t,
                    None => break,
                }
            }
            last
        };
        assert!(run(SchedPolicy::FrFcfs) <= run(SchedPolicy::Fcfs));
    }
}
