//! Cheap event queues for monotone producers.
//!
//! The engine's NoC queues (both directions) are fed by one
//! `mnpu_noc::Crossbar` whose per-core links hand out *strictly
//! increasing* delivery times (each transfer advances the link's
//! `busy_until`; the crate's `prop_deliveries_monotone_per_link` property
//! pins this down). Pushing those deliveries into a `BinaryHeap` pays
//! `O(log n)` sift-up/down churn to maintain an ordering the producer
//! already guarantees per link. [`MonotonicQueue`] exploits it: one ring
//! buffer (`VecDeque`) per lane (= per core) absorbs in-order pushes at
//! `O(1)`, and the pop side takes the minimum across lane heads — a scan
//! over a handful of lanes, not a heap rebalance.
//!
//! The structure fits queues that are pushed and popped in comparable
//! volume. It is *not* used for the device's own in-flight burst buffer:
//! that one is peeked on every tick, and a heap peek is a single load
//! where the lane scan is O(lanes).
//!
//! Contention only strengthens the invariant: link occupancy and bus
//! history only ever grow, so even a congested producer stays monotone
//! per lane. Should a future backend violate that, the queue degrades
//! gracefully instead of corrupting order: a push that lands behind its
//! lane's tail goes to a sorted `overflow` heap that competes in the same
//! min-scan. Ordering is decided by `T`'s full `Ord` — the exact tuples
//! the replaced `BinaryHeap<Reverse<T>>` ordered by — so pop order (ties
//! included) is bit-identical to the heap it replaces.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A min-queue specialized for producers that push in nondecreasing order
/// per lane. See the module-level docs for the design rationale.
#[derive(Debug, Clone)]
pub struct MonotonicQueue<T: Ord + Copy> {
    lanes: Vec<VecDeque<T>>,
    /// Safety net for out-of-order pushes; empty in every current backend.
    overflow: BinaryHeap<Reverse<T>>,
    len: usize,
}

impl<T: Ord + Copy> MonotonicQueue<T> {
    /// A queue with `lanes` independent in-order producers.
    pub fn new(lanes: usize) -> Self {
        MonotonicQueue {
            lanes: vec![VecDeque::new(); lanes.max(1)],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Push `item` produced by `lane`. `O(1)` when the lane is monotone
    /// (the invariant); falls back to the overflow heap otherwise.
    pub fn push(&mut self, lane: usize, item: T) {
        let q = &mut self.lanes[lane];
        match q.back() {
            Some(back) if *back > item => self.overflow.push(Reverse(item)),
            _ => q.push_back(item),
        }
        self.len += 1;
    }

    /// The minimum element, if any.
    pub fn peek(&self) -> Option<&T> {
        let mut best: Option<&T> = self.overflow.peek().map(|Reverse(t)| t);
        for q in &self.lanes {
            if let Some(front) = q.front() {
                if best.is_none_or(|b| front < b) {
                    best = Some(front);
                }
            }
        }
        best
    }

    /// Remove and return the minimum element.
    pub fn pop(&mut self) -> Option<T> {
        let mut best: Option<(usize, T)> = self.overflow.peek().map(|&Reverse(t)| (usize::MAX, t));
        for (i, q) in self.lanes.iter().enumerate() {
            if let Some(&front) = q.front() {
                if best.is_none_or(|(_, b)| front < b) {
                    best = Some((i, front));
                }
            }
        }
        let (src, _) = best?;
        self.len -= 1;
        if src == usize::MAX {
            self.overflow.pop().map(|Reverse(t)| t)
        } else {
            self.lanes[src].pop_front()
        }
    }

    /// The queued elements as a sorted multiset — the snapshot form.
    ///
    /// Pop order (ties included) is decided by `T`'s full `Ord` over the
    /// queue's *contents*, never by lane assignment, so rebuilding a queue
    /// by pushing these elements in order into any single lane is
    /// observationally exact (the pushes are monotone, so none overflow).
    pub fn snapshot_items(&self) -> Vec<T> {
        let mut items: Vec<T> = self.lanes.iter().flatten().copied().collect();
        items.extend(self.overflow.iter().map(|Reverse(t)| *t));
        items.sort_unstable();
        items
    }

    /// Number of queued elements across all lanes and the overflow heap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no element is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_global_order_across_lanes() {
        let mut q = MonotonicQueue::new(2);
        q.push(0, (10u64, 0usize));
        q.push(1, (5, 1));
        q.push(0, (20, 0));
        q.push(1, (15, 1));
        assert_eq!(q.len(), 4);
        let mut out = Vec::new();
        while let Some(x) = q.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![(5, 1), (10, 0), (15, 1), (20, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_resolve_by_full_tuple_like_a_heap() {
        // Same timestamp in two lanes: the full tuple decides, exactly as
        // BinaryHeap<Reverse<T>> would order the same elements.
        let mut q = MonotonicQueue::new(3);
        q.push(2, (7u64, 9u64, 2usize));
        q.push(0, (7, 3, 0));
        q.push(1, (7, 5, 1));
        assert_eq!(q.pop(), Some((7, 3, 0)));
        assert_eq!(q.pop(), Some((7, 5, 1)));
        assert_eq!(q.pop(), Some((7, 9, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn out_of_order_push_lands_in_overflow_and_still_sorts() {
        let mut q = MonotonicQueue::new(1);
        q.push(0, (10u64, 0usize));
        q.push(0, (3, 0)); // violates lane monotonicity -> overflow
        q.push(0, (12, 0));
        assert_eq!(q.peek(), Some(&(3, 0)));
        assert_eq!(q.pop(), Some((3, 0)));
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((12, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = MonotonicQueue::<(u64, usize)>::new(0); // clamps to 1 lane
        assert_eq!(q.peek(), None);
        assert_eq!(q.pop(), None);
        q.push(0, (1, 0));
        assert_eq!(q.pop(), Some((1, 0)));
    }
}
