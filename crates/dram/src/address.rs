//! Physical-address decoding with channel-subset support.

use crate::config::{AddressMapping, DramConfig};

/// Size of one DRAM transaction in bytes (the DMA/translation granule).
pub const TRANSACTION_BYTES: u64 = 64;

/// A physical address decomposed into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Global channel index (an element of the requester's channel subset).
    pub channel: usize,
    /// Bank group within the channel.
    pub bankgroup: u64,
    /// Bank within the bank group.
    pub bank: u64,
    /// Row within the bank.
    pub row: u64,
    /// 64-byte column block within the row.
    pub col: u64,
}

impl DecodedAddr {
    /// Flat bank index within the channel (`bankgroup * banks_per_group + bank`).
    pub fn flat_bank(&self, config: &DramConfig) -> usize {
        (self.bankgroup * config.banks_per_group + self.bank) as usize
    }
}

/// Decode `addr` for a requester restricted to `subset` of the channels.
///
/// The subset is how bandwidth partitioning works: a core that owns 2 of 8
/// channels has its whole address space striped across just those 2, so it
/// can never consume more than 2 channels' bandwidth. Subsets of different
/// cores may overlap (full sharing = every core owns all channels).
///
/// Interleaving within the subset is modulo-based, so non-power-of-two
/// subsets (e.g. the 7-channel half of a 1:7 split) work naturally.
///
/// # Panics
///
/// Panics if `subset` is empty or contains an out-of-range channel index.
pub fn decode(addr: u64, config: &DramConfig, subset: &[usize]) -> DecodedAddr {
    assert!(!subset.is_empty(), "channel subset must not be empty");
    debug_assert!(subset.iter().all(|&c| c < config.channels), "channel index out of range");
    let n = subset.len() as u64;
    let block = addr / TRANSACTION_BYTES;
    let cols = config.row_bytes / TRANSACTION_BYTES;

    match config.mapping {
        AddressMapping::BlockInterleaved => {
            // Bank-group bits sit below the column bits so that streaming
            // within one channel rotates bank groups and pays tCCD_S, not
            // tCCD_L — the same trick DRAMsim3's default mapping uses.
            let (local, ch) = divmod(block, n);
            let channel = subset[ch as usize];
            let (t, bankgroup) = divmod(local, config.bankgroups);
            let (t, col) = divmod(t, cols);
            let (t, bank) = divmod(t, config.banks_per_group);
            let row = modulo(t, config.rows);
            DecodedAddr { channel, bankgroup, bank, row, col }
        }
        AddressMapping::RowInterleaved => {
            let (t, col) = divmod(block, cols);
            let (t, ch) = divmod(t, n);
            let channel = subset[ch as usize];
            let (t, bankgroup) = divmod(t, config.bankgroups);
            let (t, bank) = divmod(t, config.banks_per_group);
            let row = modulo(t, config.rows);
            DecodedAddr { channel, bankgroup, bank, row, col }
        }
    }
}

/// `(v / d, v % d)`, as shift/mask when the divisor is a power of two.
/// Geometry divisors (channel-subset size, bank groups, banks, columns,
/// rows) are runtime values, so LLVM cannot strength-reduce them itself —
/// and on the decode-per-transaction hot path the two hardware divides per
/// term were measurable. Powers of two cover every stock preset; odd
/// subsets (e.g. the 7-channel half of a 1:7 split) take the divide.
#[inline]
fn divmod(v: u64, d: u64) -> (u64, u64) {
    debug_assert!(d > 0);
    if d.is_power_of_two() {
        (v >> d.trailing_zeros(), v & (d - 1))
    } else {
        (v / d, v % d)
    }
}

/// `v % d`, as a mask when the divisor is a power of two.
#[inline]
fn modulo(v: u64, d: u64) -> u64 {
    debug_assert!(d > 0);
    if d.is_power_of_two() {
        v & (d - 1)
    } else {
        v % d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> DramConfig {
        DramConfig::hbm2(8)
    }

    #[test]
    fn sequential_blocks_rotate_channels() {
        let c = cfg();
        let all: Vec<usize> = (0..8).collect();
        for i in 0..16u64 {
            let d = decode(i * TRANSACTION_BYTES, &c, &all);
            assert_eq!(d.channel, (i % 8) as usize);
        }
    }

    #[test]
    fn subset_restricts_channels() {
        let c = cfg();
        let subset = vec![2usize, 5, 6];
        for i in 0..1000u64 {
            let d = decode(i * TRANSACTION_BYTES, &c, &subset);
            assert!(subset.contains(&d.channel));
        }
    }

    #[test]
    fn row_interleaved_keeps_row_in_one_channel() {
        let mut c = cfg();
        c.mapping = AddressMapping::RowInterleaved;
        let all: Vec<usize> = (0..8).collect();
        let cols = c.row_bytes / TRANSACTION_BYTES;
        let first = decode(0, &c, &all);
        for i in 1..cols {
            let d = decode(i * TRANSACTION_BYTES, &c, &all);
            assert_eq!(d.channel, first.channel);
            assert_eq!(d.row, first.row);
            assert_eq!(d.col, i);
        }
    }

    #[test]
    fn single_channel_subset_pins_everything() {
        let c = cfg();
        for i in 0..100u64 {
            let d = decode(i * 64 * 997, &c, &[3]);
            assert_eq!(d.channel, 3);
        }
    }

    #[test]
    fn flat_bank_is_bijective_per_channel() {
        let c = cfg();
        let mut seen = std::collections::HashSet::new();
        for bg in 0..c.bankgroups {
            for b in 0..c.banks_per_group {
                let d = DecodedAddr { channel: 0, bankgroup: bg, bank: b, row: 0, col: 0 };
                assert!(seen.insert(d.flat_bank(&c)));
            }
        }
        assert_eq!(seen.len() as u64, c.banks_per_channel());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_subset_panics() {
        let _ = decode(0, &cfg(), &[]);
    }

    proptest! {
        #[test]
        fn prop_decode_in_range(addr in 0u64..(1 << 40), nsub in 1usize..8) {
            let c = cfg();
            let subset: Vec<usize> = (0..nsub).collect();
            let d = decode(addr, &c, &subset);
            prop_assert!(d.channel < c.channels);
            prop_assert!(d.bankgroup < c.bankgroups);
            prop_assert!(d.bank < c.banks_per_group);
            prop_assert!(d.row < c.rows);
            prop_assert!(d.col < c.row_bytes / TRANSACTION_BYTES);
        }

        #[test]
        fn prop_same_block_same_target(addr in 0u64..(1 << 40), off in 0u64..TRANSACTION_BYTES) {
            let c = cfg();
            let all: Vec<usize> = (0..8).collect();
            let base = addr - addr % TRANSACTION_BYTES;
            prop_assert_eq!(decode(base, &c, &all), decode(base + off, &c, &all));
        }

        #[test]
        fn prop_distinct_blocks_distinct_coords(a in 0u64..(1 << 26), b in 0u64..(1 << 26)) {
            // Within capacity, different blocks never collide on the same
            // (channel, bg, bank, row, col) tuple.
            let c = cfg();
            let all: Vec<usize> = (0..8).collect();
            prop_assume!(a != b);
            let da = decode(a * TRANSACTION_BYTES, &c, &all);
            let db = decode(b * TRANSACTION_BYTES, &c, &all);
            prop_assert_ne!((da.channel, da.bankgroup, da.bank, da.row, da.col),
                            (db.channel, db.bankgroup, db.bank, db.row, db.col));
        }
    }
}
