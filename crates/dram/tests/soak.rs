//! Device-level soak tests: long pseudo-random request streams must respect
//! the physical invariants of the model (causality, bandwidth ceiling,
//! conservation) under every preset and policy.
//!
//! The request stream is driven by an explicit xorshift seed so a failure
//! is reproducible from its message alone. Override the default with
//! `MNPU_SOAK_SEED=<decimal or 0x-hex>` to re-run a reported failure or
//! to widen coverage locally; the seed in use is printed by every
//! assertion.

use mnpu_dram::{AddressMapping, Completion, Dram, DramConfig, SchedPolicy, TRANSACTION_BYTES};

/// Default stream seed (pi's first 64 fractional bits, an arbitrary but
/// fixed nothing-up-my-sleeve number).
const DEFAULT_SEED: u64 = 0x243f_6a88_85a3_08d3;

/// The seed for this run: `MNPU_SOAK_SEED` when set, else the default.
fn soak_seed() -> u64 {
    match std::env::var("MNPU_SOAK_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("MNPU_SOAK_SEED {v:?} is not a u64"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// Drive `n` pseudo-random requests through `dram` to completion, with an
/// xorshift stream started at `seed` (must be nonzero).
fn soak(dram: &mut Dram, seed: u64, n: u64, write_every: u64) -> Vec<Completion> {
    assert_ne!(seed, 0, "xorshift cannot leave the zero state");
    let mut state = seed;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = Vec::with_capacity(n as usize);
    let mut now = 0;
    let mut issued = 0;
    while (out.len() as u64) < n {
        while issued < n {
            let addr = (next() % (1 << 32)) / TRANSACTION_BYTES * TRANSACTION_BYTES;
            let is_write = issued % write_every == 0;
            if dram.try_enqueue(now, (issued % 3) as usize, addr, is_write, issued).is_err() {
                break;
            }
            issued += 1;
        }
        out.extend(dram.advance(now));
        if (out.len() as u64) < n {
            now = dram.next_event().expect("work pending");
        }
    }
    out
}

fn check_invariants(cfg: DramConfig, n: u64) {
    let seed = soak_seed();
    let channels = cfg.channels as u64;
    let burst = cfg.timing.burst_cycles;
    let min_latency = cfg.timing.cl + burst;
    let mut dram = Dram::new(cfg);
    let done = soak(&mut dram, seed, n, 5);

    assert_eq!(done.len() as u64, n, "every request completes exactly once (seed {seed:#x})");
    let mut metas: Vec<u64> = done.iter().map(|c| c.meta).collect();
    metas.sort_unstable();
    metas.dedup();
    assert_eq!(metas.len() as u64, n, "no duplicated completions (seed {seed:#x})");

    // Causality: nothing completes before the minimum CAS + burst latency.
    assert!(
        done.iter().all(|c| c.completed_at >= min_latency),
        "completion beat the CAS+burst floor (seed {seed:#x})"
    );

    // Bandwidth ceiling: total completions cannot beat the aggregate bus.
    let span = done.iter().map(|c| c.completed_at).max().unwrap();
    let max_txns = span / burst * channels + channels;
    assert!(n <= max_txns, "{n} transactions in {span} cycles beats the bus (seed {seed:#x})");

    // Conservation in the statistics.
    let s = dram.stats();
    assert_eq!(s.total.transactions(), n, "seed {seed:#x}");
    assert_eq!(s.total.bytes, n * TRANSACTION_BYTES, "seed {seed:#x}");
    assert_eq!(s.total.row_hits + s.total.row_misses + s.total.row_conflicts, n, "seed {seed:#x}");
    assert_eq!(s.per_core_bytes.iter().sum::<u64>(), n * TRANSACTION_BYTES, "seed {seed:#x}");
    assert_eq!(dram.pending(), 0, "seed {seed:#x}");
}

#[test]
fn hbm2_soak_invariants() {
    check_invariants(DramConfig::hbm2(4), 20_000);
}

#[test]
fn ddr4_soak_invariants() {
    check_invariants(DramConfig::ddr4(2), 10_000);
}

#[test]
fn bench_preset_soak_invariants() {
    check_invariants(DramConfig::bench(8), 20_000);
}

#[test]
fn single_channel_soak_invariants() {
    check_invariants(DramConfig::hbm2(1), 5_000);
}

#[test]
fn fcfs_soak_invariants() {
    let mut cfg = DramConfig::hbm2(2);
    cfg.policy = SchedPolicy::Fcfs;
    check_invariants(cfg, 10_000);
}

#[test]
fn row_interleaved_soak_invariants() {
    let mut cfg = DramConfig::hbm2(4);
    cfg.mapping = AddressMapping::RowInterleaved;
    check_invariants(cfg, 10_000);
}

#[test]
fn deep_queue_soak_invariants() {
    let mut cfg = DramConfig::hbm2(2);
    cfg.queue_depth = 256;
    check_invariants(cfg, 10_000);
}

#[test]
fn multi_seed_soak_invariants() {
    // A handful of fixed extra seeds so the default CI run already covers
    // several distinct streams, not just the nothing-up-my-sleeve one.
    for seed in [1u64, 0xdead_beef, 0x1234_5678_9abc_def0] {
        let cfg = DramConfig::hbm2(2);
        let burst = cfg.timing.burst_cycles;
        let min_latency = cfg.timing.cl + burst;
        let mut dram = Dram::new(cfg);
        let done = soak(&mut dram, seed, 5_000, 5);
        assert_eq!(done.len(), 5_000, "seed {seed:#x}");
        assert!(
            done.iter().all(|c| c.completed_at >= min_latency),
            "completion beat the CAS+burst floor (seed {seed:#x})"
        );
        assert_eq!(dram.stats().total.transactions(), 5_000, "seed {seed:#x}");
        assert_eq!(dram.pending(), 0, "seed {seed:#x}");
    }
}

#[test]
fn random_stream_has_low_row_hit_rate_streaming_high() {
    // Sanity of the row-buffer model itself: streaming accesses mostly hit,
    // random accesses mostly miss or conflict.
    let seed = soak_seed();
    let mut rnd = Dram::new(DramConfig::hbm2(2));
    let _ = soak(&mut rnd, seed, 10_000, u64::MAX);
    let random_rate = rnd.stats().total.row_hit_rate();

    let mut streaming = Dram::new(DramConfig::hbm2(2));
    let mut now = 0;
    let mut done = 0u64;
    let mut issued = 0u64;
    let n = 10_000u64;
    while done < n {
        while issued < n {
            if streaming.try_enqueue(now, 0, issued * TRANSACTION_BYTES, false, issued).is_err() {
                break;
            }
            issued += 1;
        }
        done += streaming.advance(now).len() as u64;
        if done < n {
            now = streaming.next_event().expect("pending");
        }
    }
    let stream_rate = streaming.stats().total.row_hit_rate();
    assert!(stream_rate > 0.8, "streaming should mostly hit: {stream_rate} (seed {seed:#x})");
    assert!(
        random_rate < stream_rate,
        "random {random_rate} vs streaming {stream_rate} (seed {seed:#x})"
    );
}
