//! Device-level soak tests: long pseudo-random request streams must respect
//! the physical invariants of the model (causality, bandwidth ceiling,
//! conservation) under every preset and policy.

use mnpu_dram::{AddressMapping, Completion, Dram, DramConfig, SchedPolicy, TRANSACTION_BYTES};

/// Drive `n` pseudo-random requests through `dram` to completion.
fn soak(dram: &mut Dram, n: u64, write_every: u64) -> Vec<Completion> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = Vec::with_capacity(n as usize);
    let mut now = 0;
    let mut issued = 0;
    while (out.len() as u64) < n {
        while issued < n {
            let addr = (next() % (1 << 32)) / TRANSACTION_BYTES * TRANSACTION_BYTES;
            let is_write = issued % write_every == 0;
            if dram.try_enqueue(now, (issued % 3) as usize, addr, is_write, issued).is_err() {
                break;
            }
            issued += 1;
        }
        out.extend(dram.advance(now));
        if (out.len() as u64) < n {
            now = dram.next_event().expect("work pending");
        }
    }
    out
}

fn check_invariants(cfg: DramConfig, n: u64) {
    let channels = cfg.channels as u64;
    let burst = cfg.timing.burst_cycles;
    let min_latency = cfg.timing.cl + burst;
    let mut dram = Dram::new(cfg);
    let done = soak(&mut dram, n, 5);

    assert_eq!(done.len() as u64, n, "every request completes exactly once");
    let mut metas: Vec<u64> = done.iter().map(|c| c.meta).collect();
    metas.sort_unstable();
    metas.dedup();
    assert_eq!(metas.len() as u64, n, "no duplicated completions");

    // Causality: nothing completes before the minimum CAS + burst latency.
    assert!(done.iter().all(|c| c.completed_at >= min_latency));

    // Bandwidth ceiling: total completions cannot beat the aggregate bus.
    let span = done.iter().map(|c| c.completed_at).max().unwrap();
    let max_txns = span / burst * channels + channels;
    assert!(n <= max_txns, "{n} transactions in {span} cycles beats the bus");

    // Conservation in the statistics.
    let s = dram.stats();
    assert_eq!(s.total.transactions(), n);
    assert_eq!(s.total.bytes, n * TRANSACTION_BYTES);
    assert_eq!(s.total.row_hits + s.total.row_misses + s.total.row_conflicts, n);
    assert_eq!(s.per_core_bytes.iter().sum::<u64>(), n * TRANSACTION_BYTES);
    assert_eq!(dram.pending(), 0);
}

#[test]
fn hbm2_soak_invariants() {
    check_invariants(DramConfig::hbm2(4), 20_000);
}

#[test]
fn ddr4_soak_invariants() {
    check_invariants(DramConfig::ddr4(2), 10_000);
}

#[test]
fn bench_preset_soak_invariants() {
    check_invariants(DramConfig::bench(8), 20_000);
}

#[test]
fn single_channel_soak_invariants() {
    check_invariants(DramConfig::hbm2(1), 5_000);
}

#[test]
fn fcfs_soak_invariants() {
    let mut cfg = DramConfig::hbm2(2);
    cfg.policy = SchedPolicy::Fcfs;
    check_invariants(cfg, 10_000);
}

#[test]
fn row_interleaved_soak_invariants() {
    let mut cfg = DramConfig::hbm2(4);
    cfg.mapping = AddressMapping::RowInterleaved;
    check_invariants(cfg, 10_000);
}

#[test]
fn deep_queue_soak_invariants() {
    let mut cfg = DramConfig::hbm2(2);
    cfg.queue_depth = 256;
    check_invariants(cfg, 10_000);
}

#[test]
fn random_stream_has_low_row_hit_rate_streaming_high() {
    // Sanity of the row-buffer model itself: streaming accesses mostly hit,
    // random accesses mostly miss or conflict.
    let mut rnd = Dram::new(DramConfig::hbm2(2));
    let _ = soak(&mut rnd, 10_000, u64::MAX);
    let random_rate = rnd.stats().total.row_hit_rate();

    let mut streaming = Dram::new(DramConfig::hbm2(2));
    let mut now = 0;
    let mut done = 0u64;
    let mut issued = 0u64;
    let n = 10_000u64;
    while done < n {
        while issued < n {
            if streaming.try_enqueue(now, 0, issued * TRANSACTION_BYTES, false, issued).is_err() {
                break;
            }
            issued += 1;
        }
        done += streaming.advance(now).len() as u64;
        if done < n {
            now = streaming.next_event().expect("pending");
        }
    }
    let stream_rate = streaming.stats().total.row_hit_rate();
    assert!(stream_rate > 0.8, "streaming should mostly hit: {stream_rate}");
    assert!(random_rate < stream_rate, "random {random_rate} vs streaming {stream_rate}");
}
