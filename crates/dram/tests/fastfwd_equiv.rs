//! Lockstep equivalence between the steady-state fast-forward and the
//! per-command reference scheduler.
//!
//! Two devices differing *only* in [`DramConfig::fastfwd`] replay the same
//! random operation script. After every single operation the pair must
//! agree on everything externally observable: the completions returned by
//! `advance` (order included), the next-event cycle, the full statistics
//! snapshot, the pending count — and, at the end, the energy estimate
//! derived from those statistics. The fast path's claim is *bit-exactness*,
//! not approximate equivalence, so any drift at any step is a failure.
//!
//! The generated scripts lean on a streaming bias (runs of sequential
//! same-direction addresses) so the fast path actually installs runs; a
//! deterministic test pins `fastfwd_commits() > 0` to prove the suite is
//! exercising the fast path rather than vacuously comparing two slow paths.

use mnpu_dram::{estimate_energy, Dram, DramConfig, DramEnergy, TRANSACTION_BYTES};
use proptest::prelude::*;

/// One scripted device operation, decoded from a generated tuple.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// A burst of `len` sequential same-direction transactions starting at
    /// `base` — the row-hit streams the fast path is built for.
    Stream { base: u64, len: u8, is_write: bool },
    /// A single transaction at an arbitrary address (breaks runs).
    Single { addr: u64, is_write: bool },
    /// Jump the clock to the device's own next event and `advance`.
    AdvanceToNext,
    /// Jump the clock forward by an arbitrary stride and `advance` —
    /// large strides land mid-run and cross refresh deadlines.
    AdvanceBy { delta: u64 },
}

fn decode_op((kind, addr, delta): (u8, u64, u64)) -> Op {
    match kind {
        0 | 1 => Op::Stream { base: addr, len: (delta % 24) as u8 + 2, is_write: kind == 1 },
        2 => Op::Single { addr, is_write: delta % 2 == 0 },
        3 => Op::AdvanceToNext,
        _ => Op::AdvanceBy { delta: delta * 29 },
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..5, 0u64..(1 << 26), 0u64..512), 1..96)
        .prop_map(|raw| raw.into_iter().map(decode_op).collect())
}

/// Replay `ops` on a fast-forwarding device and its per-command twin,
/// diffing every observable after every operation.
fn check(cfg: DramConfig, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut fast = Dram::new(DramConfig { fastfwd: true, ..cfg.clone() });
    let mut slow = Dram::new(DramConfig { fastfwd: false, ..cfg });
    let mut now = 0u64;
    let mut meta = 0u64;
    let enqueue_both = |f: &mut Dram, s: &mut Dram, now, addr: u64, w, meta: &mut u64| {
        let addr = addr / TRANSACTION_BYTES * TRANSACTION_BYTES;
        let core = (addr % 3) as usize;
        let rf = f.try_enqueue(now, core, addr, w, *meta);
        let rs = s.try_enqueue(now, core, addr, w, *meta);
        assert_eq!(rf, rs, "enqueue acceptance diverged at {addr:#x}");
        *meta += 1;
    };
    for &op in ops {
        match op {
            Op::Stream { base, len, is_write } => {
                for i in 0..u64::from(len) {
                    let addr = base + i * TRANSACTION_BYTES;
                    enqueue_both(&mut fast, &mut slow, now, addr, is_write, &mut meta);
                }
            }
            Op::Single { addr, is_write } => {
                enqueue_both(&mut fast, &mut slow, now, addr, is_write, &mut meta);
            }
            Op::AdvanceToNext => {
                prop_assert_eq!(fast.next_event(), slow.next_event());
                now = fast.next_event().unwrap_or(now + 1);
                prop_assert_eq!(fast.advance(now), slow.advance(now));
            }
            Op::AdvanceBy { delta } => {
                now += delta;
                prop_assert_eq!(fast.advance(now), slow.advance(now));
            }
        }
        prop_assert_eq!(fast.next_event(), slow.next_event(), "next_event after {:?}", op);
        prop_assert_eq!(fast.pending(), slow.pending(), "pending after {:?}", op);
        prop_assert_eq!(fast.stats(), slow.stats(), "stats after {:?}", op);
    }
    // Drain both to idle, still in lockstep.
    while let Some(t) = fast.next_event() {
        prop_assert_eq!(Some(t), slow.next_event());
        now = t;
        prop_assert_eq!(fast.advance(now), slow.advance(now));
        prop_assert_eq!(fast.stats(), slow.stats());
    }
    prop_assert_eq!(slow.next_event(), None);
    prop_assert_eq!(fast.pending(), 0);
    prop_assert_eq!(slow.pending(), 0);
    // Energy is derived from the counters, so equal stats must yield equal
    // energy — checked anyway to pin the whole reporting chain.
    let model = DramEnergy::hbm2();
    let ef = estimate_energy(&fast.stats(), fast.config(), &model, now);
    let es = estimate_energy(&slow.stats(), slow.config(), &model, now);
    prop_assert_eq!(ef, es, "energy diverged");
    prop_assert_eq!(slow.fastfwd_commits(), 0, "reference device must stay on the slow path");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The bench device (`tCCD_L <= burst`) — the geometry where the fast
    /// path actually engages.
    #[test]
    fn prop_fastfwd_matches_reference_bench(ops in arb_ops()) {
        check(DramConfig::bench(2), &ops)?;
    }

    /// Single channel concentrates every stream on one queue: longer runs,
    /// constant queue-full backpressure.
    #[test]
    fn prop_fastfwd_matches_reference_single_channel(ops in arb_ops()) {
        check(DramConfig::bench(1), &ops)?;
    }

    /// HBM2 timing (`tCCD_L > burst`) — the install guard must reject every
    /// run, making fastfwd-on literally the same machine as fastfwd-off.
    #[test]
    fn prop_fastfwd_vacuous_on_hbm2(ops in arb_ops()) {
        check(DramConfig::hbm2(2), &ops)?;
    }
}

/// A plain streaming read shows the suite is not vacuous: the fast path
/// must retire most of the stream, and still match the reference exactly.
#[test]
fn streaming_read_uses_fast_path_and_matches() {
    let mk = |ff: bool| {
        let mut d = Dram::new(DramConfig { fastfwd: ff, ..DramConfig::bench(1) });
        let mut now = 0;
        let mut done = Vec::new();
        for i in 0..256u64 {
            while d.try_enqueue(now, 0, i * TRANSACTION_BYTES, false, i).is_err() {
                now = d.next_event().expect("must drain");
                d.advance_into(now, &mut done);
            }
        }
        while let Some(t) = d.next_event() {
            now = t;
            d.advance_into(now, &mut done);
        }
        (done, d.stats(), d.fastfwd_commits())
    };
    let (done_f, stats_f, ff) = mk(true);
    let (done_s, stats_s, ss) = mk(false);
    assert_eq!(done_f, done_s);
    assert_eq!(stats_f, stats_s);
    assert_eq!(ss, 0);
    assert!(ff > 128, "fast path should retire most of a 256-read stream, got {ff}");
}
