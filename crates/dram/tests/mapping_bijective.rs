//! Exhaustive address-mapping check on a miniature device: the decode of
//! every block in capacity is unique and covers the whole geometry.

use mnpu_dram::{AddressMapping, DramConfig};
use std::collections::HashSet;

fn mini(mapping: AddressMapping) -> DramConfig {
    DramConfig {
        channels: 3, // non-power-of-two on purpose
        bankgroups: 2,
        banks_per_group: 2,
        row_bytes: 256,
        rows: 8,
        mapping,
        ..DramConfig::hbm2(3)
    }
}

#[test]
fn block_interleaved_decode_is_a_bijection() {
    check_bijection(mini(AddressMapping::BlockInterleaved));
}

#[test]
fn row_interleaved_decode_is_a_bijection() {
    check_bijection(mini(AddressMapping::RowInterleaved));
}

fn check_bijection(cfg: DramConfig) {
    let subset: Vec<usize> = (0..cfg.channels).collect();
    let blocks = cfg.capacity_bytes() / 64;
    let mut seen = HashSet::new();
    let mut per_channel = vec![0u64; cfg.channels];
    for b in 0..blocks {
        let d = mnpu_dram::decode(b * 64, &cfg, &subset);
        assert!(
            seen.insert((d.channel, d.bankgroup, d.bank, d.row, d.col)),
            "collision at block {b}"
        );
        per_channel[d.channel] += 1;
    }
    assert_eq!(seen.len() as u64, blocks, "full coverage");
    // Channels are balanced to within one block.
    let min = per_channel.iter().min().unwrap();
    let max = per_channel.iter().max().unwrap();
    assert!(max - min <= 1, "imbalanced channels: {per_channel:?}");
}
