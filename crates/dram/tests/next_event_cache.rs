//! Property test for the memoized next-event path: after *any* interleaving
//! of `try_enqueue` and `advance`, the cached [`Dram::next_event`] must equal
//! a brute-force recomputation that rescans every channel's queue
//! (`Dram::next_event_uncached`). This is the invariant the whole event loop
//! leans on — a stale candidate cache would silently stall or reorder the
//! simulation rather than crash.

use mnpu_dram::{Dram, DramConfig, SchedPolicy, TRANSACTION_BYTES};
use proptest::prelude::*;

/// One scripted device operation, decoded from a generated tuple.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `try_enqueue` at the current cycle (full queues are fine — a
    /// rejected enqueue must not perturb the cache either).
    Enqueue { core: usize, addr: u64, is_write: bool },
    /// Jump the clock to the device's own next event and `advance`.
    AdvanceToNext,
    /// Jump the clock forward by an arbitrary stride and `advance` — large
    /// strides cross refresh deadlines and trigger idle-refresh catch-up.
    AdvanceBy { delta: u64 },
}

fn decode_op((kind, addr, delta): (u8, u64, u64)) -> Op {
    match kind {
        0 => Op::Enqueue { core: (addr % 3) as usize, addr, is_write: false },
        1 => Op::Enqueue { core: (addr % 3) as usize, addr, is_write: true },
        2 => Op::AdvanceToNext,
        // Stretch strides so some jumps overshoot tREFI (~thousands of
        // cycles) and some stay within a scheduling window.
        _ => Op::AdvanceBy { delta: delta * 37 },
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u64..(1 << 26), 0u64..512), 1..160)
        .prop_map(|raw| raw.into_iter().map(decode_op).collect())
}

/// Replay `ops`, checking the cached next-event answer against the
/// brute-force rescan after every single operation.
fn check(mut dram: Dram, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut now = 0u64;
    let mut meta = 0u64;
    for &op in ops {
        match op {
            Op::Enqueue { core, addr, is_write } => {
                let addr = addr / TRANSACTION_BYTES * TRANSACTION_BYTES;
                let _ = dram.try_enqueue(now, core, addr, is_write, meta);
                meta += 1;
            }
            Op::AdvanceToNext => {
                now = dram.next_event().unwrap_or(now + 1);
                let _ = dram.advance(now);
            }
            Op::AdvanceBy { delta } => {
                now += delta;
                let _ = dram.advance(now);
            }
        }
        prop_assert_eq!(
            dram.next_event(),
            dram.next_event_uncached(),
            "cached next_event diverged after {:?} at cycle {}",
            op,
            now
        );
    }
    // Drain to idle, still comparing at every event.
    while let Some(t) = dram.next_event() {
        now = t;
        let _ = dram.advance(now);
        prop_assert_eq!(dram.next_event(), dram.next_event_uncached());
    }
    prop_assert_eq!(dram.pending(), 0, "device must drain to idle");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// FR-FCFS, multi-channel: the policy whose reorder window the
    /// candidate cache actually memoizes.
    #[test]
    fn prop_cached_next_event_matches_bruteforce_frfcfs(ops in arb_ops()) {
        check(Dram::new(DramConfig::hbm2(4)), &ops)?;
    }

    /// FCFS keeps the head-of-queue pick; the cache must agree there too.
    #[test]
    fn prop_cached_next_event_matches_bruteforce_fcfs(ops in arb_ops()) {
        let mut cfg = DramConfig::hbm2(2);
        cfg.policy = SchedPolicy::Fcfs;
        check(Dram::new(cfg), &ops)?;
    }

    /// Single shallow-queue channel: enqueue rejections and queue-full
    /// backpressure happen constantly, exercising the "rejected enqueue
    /// leaves the cache untouched" path.
    #[test]
    fn prop_cached_next_event_matches_bruteforce_shallow(ops in arb_ops()) {
        let cfg = DramConfig { queue_depth: 4, ..DramConfig::hbm2(1) };
        check(Dram::new(cfg), &ops)?;
    }
}
