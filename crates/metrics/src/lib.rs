//! Statistics used by the paper's evaluation: speedup/slowdown, the
//! Van Craeynest fairness metric (Eq. 1), geometric means, CDFs, box-plot
//! summaries and moving averages.
//!
//! All functions are pure and panic on empty input (an empty mix is a
//! harness bug, not a runtime condition).
//!
//! # Example
//!
//! ```
//! use mnpu_metrics::{fairness, geomean, Speedup};
//!
//! // A dual-core mix: each workload vs its Ideal (solo, all resources) run.
//! let a = Speedup::new(1000, 1250); // 0.8 of ideal
//! let b = Speedup::new(2000, 2000); // 1.0 of ideal
//! let mix_perf = geomean(&[a.value(), b.value()]);
//! assert!(mix_perf > 0.89 && mix_perf < 0.90);
//! let f = fairness(&[a.slowdown(), b.slowdown()]);
//! assert!(f > 0.8 && f < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prom;

pub use prom::ExpHistogram;

/// A workload's speedup relative to its `Ideal` (solo, all-resources) run.
///
/// Values are ≤ 1.0 when sharing hurts and can exceed 1.0 only through
/// simulator noise (e.g. row-buffer luck).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    ideal_cycles: u64,
    actual_cycles: u64,
}

impl Speedup {
    /// Build from the Ideal run's cycles and the measured run's cycles.
    ///
    /// # Panics
    ///
    /// Panics if either cycle count is zero.
    pub fn new(ideal_cycles: u64, actual_cycles: u64) -> Self {
        assert!(ideal_cycles > 0 && actual_cycles > 0, "cycle counts must be positive");
        Speedup { ideal_cycles, actual_cycles }
    }

    /// `ideal / actual` — 1.0 means no interference at all.
    pub fn value(&self) -> f64 {
        self.ideal_cycles as f64 / self.actual_cycles as f64
    }

    /// `actual / ideal`, the inverse of [`Speedup::value`] (the paper's
    /// slowdown, input to the fairness metric).
    pub fn slowdown(&self) -> f64 {
        self.actual_cycles as f64 / self.ideal_cycles as f64
    }
}

/// Geometric mean of strictly positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or any value is not finite and positive.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0 && x.is_finite(), "geomean requires positive finite values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn stddev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Eq. 1 of the paper (Van Craeynest et al.): `Fairness = 1 - σ/μ` over the
/// per-workload slowdowns of one mix. 1.0 = perfectly balanced.
///
/// # Panics
///
/// Panics if `slowdowns` is empty or contains non-positive values.
pub fn fairness(slowdowns: &[f64]) -> f64 {
    assert!(!slowdowns.is_empty(), "fairness of empty mix");
    assert!(slowdowns.iter().all(|&s| s > 0.0), "slowdowns must be positive");
    1.0 - stddev(slowdowns) / mean(slowdowns)
}

/// An empirical CDF over a sample, for the paper's quad-core and mapping
/// figures.
///
/// ```
/// use mnpu_metrics::Cdf;
///
/// let cdf = Cdf::new(vec![0.5, 0.7, 0.9, 1.0]);
/// assert_eq!(cdf.fraction_at_or_below(0.7), 0.5);
/// assert_eq!(cdf.quantile(0.0), 0.5);
/// assert_eq!(cdf.quantile(1.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a sample (order irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "CDF of empty sample");
        assert!(sample.iter().all(|x| !x.is_nan()), "CDF sample contains NaN");
        sample.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted: sample }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the sample is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by nearest-rank: the smallest
    /// observation `v` with [`fraction_at_or_below`](Cdf::fraction_at_or_below)`(v) >= q`
    /// (the sample minimum for `q = 0`). Every returned value is an actual
    /// observation, and `quantile(1.0)` is always the maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        // Nearest-rank: the smallest 1-based rank whose cumulative fraction
        // `rank / n` reaches q. Phrased as the same `count / n` division
        // `fraction_at_or_below` performs (rather than `ceil(q * n)`, whose
        // product rounds the other way for some q) so the two stay exactly
        // consistent under floating point.
        let n = self.sorted.len();
        let (mut lo, mut hi) = (1usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if mid as f64 / n as f64 >= q {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        self.sorted[lo - 1]
    }

    /// `(value, cumulative fraction)` pairs for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted.iter().enumerate().map(|(i, &v)| (v, (i + 1) as f64 / n)).collect()
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Five-number summary for the paper's Fig. 8 box plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

impl BoxStats {
    /// Compute the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn from_sample(sample: &[f64]) -> Self {
        let cdf = Cdf::new(sample.to_vec());
        BoxStats {
            min: cdf.quantile(0.0),
            q1: cdf.quantile(0.25),
            median: cdf.quantile(0.5),
            q3: cdf.quantile(0.75),
            max: cdf.quantile(1.0),
        }
    }

    /// `max - min`: the spread the paper reads as contention sensitivity.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Tail-latency summary of a cycle-valued sample (per-job queueing delay,
/// service time or completion latency from a serve-mode run).
///
/// Quantiles are nearest-rank over the empirical [`Cdf`], so every reported
/// value is an actual observation.
///
/// ```
/// use mnpu_metrics::LatencyStats;
///
/// let s = LatencyStats::from_cycles(&[100, 200, 300, 400]);
/// assert_eq!(s.p50, 200.0); // ceil(0.5 * 4) = rank 2
/// assert_eq!(s.max, 400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observation.
    pub max: f64,
}

impl LatencyStats {
    /// Summarize a sample of latencies.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn from_sample(sample: &[f64]) -> Self {
        let cdf = Cdf::new(sample.to_vec());
        LatencyStats {
            p50: cdf.quantile(0.5),
            p95: cdf.quantile(0.95),
            p99: cdf.quantile(0.99),
            mean: mean(cdf.values()),
            max: cdf.quantile(1.0),
        }
    }

    /// [`LatencyStats::from_sample`] over integer cycle counts.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn from_cycles(cycles: &[u64]) -> Self {
        let sample: Vec<f64> = cycles.iter().map(|&c| c as f64).collect();
        LatencyStats::from_sample(&sample)
    }

    /// Non-panicking [`LatencyStats::from_sample`]: `None` on an empty
    /// sample. The form long-lived services use — an empty latency window
    /// is a normal runtime condition there, not a harness bug.
    pub fn try_from_sample(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() {
            None
        } else {
            Some(LatencyStats::from_sample(sample))
        }
    }

    /// Non-panicking [`LatencyStats::from_cycles`]: `None` on an empty
    /// sample.
    pub fn try_from_cycles(cycles: &[u64]) -> Option<Self> {
        if cycles.is_empty() {
            None
        } else {
            Some(LatencyStats::from_cycles(cycles))
        }
    }
}

/// Rolling counters for a long-lived simulation service: one instance
/// aggregates the whole job lifecycle (admission through completion) plus
/// observed job latencies, and every derived figure is a pure function of
/// the counters so the struct can be asserted against in property tests.
///
/// ```
/// use mnpu_metrics::ServiceStats;
///
/// let mut s = ServiceStats::new();
/// s.submissions = 3;
/// s.rejects = 1;
/// s.completions = 1;
/// assert_eq!(s.in_system(), 1); // 3 submitted - 1 rejected - 1 finished
/// assert!(s.latency().is_none()); // no samples yet
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Jobs submitted (accepted *and* rejected).
    pub submissions: u64,
    /// Submissions refused by admission control (queue full).
    pub rejects: u64,
    /// Jobs handed to a worker at least once.
    pub dispatches: u64,
    /// Jobs that ran to completion.
    pub completions: u64,
    /// Jobs cancelled by request.
    pub cancellations: u64,
    /// Jobs that died with an execution error.
    pub failures: u64,
    /// Jobs stopped at their wall-clock budget.
    pub over_budget: u64,
    /// Jobs checkpointed by a drain instead of finishing.
    pub suspended: u64,
    /// Jobs answered from the result cache without running.
    pub cache_hits: u64,
    /// Wall milliseconds workers spent executing jobs (busy time, summed
    /// across workers — the numerator of a utilization gauge).
    pub worker_busy_ms: u64,
    latencies_ms: Vec<f64>,
    queue_depths: prom::ExpHistogram,
}

impl ServiceStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServiceStats::default()
    }

    /// Record one finished job's wall-clock latency.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is NaN or negative.
    pub fn record_latency_ms(&mut self, ms: f64) {
        assert!(ms >= 0.0, "latency must be a non-negative number of milliseconds");
        self.latencies_ms.push(ms);
    }

    /// Jobs that reached a terminal state, whatever it was.
    pub fn finished(&self) -> u64 {
        self.completions + self.cancellations + self.failures + self.over_budget + self.suspended
    }

    /// Jobs currently queued or running: submissions minus rejects minus
    /// every terminal outcome. The queue-depth gauge a service exports must
    /// always agree with this derivation.
    pub fn in_system(&self) -> u64 {
        self.submissions - self.rejects - self.finished()
    }

    /// Number of recorded latency samples.
    pub fn latency_samples(&self) -> usize {
        self.latencies_ms.len()
    }

    /// The recorded latency samples, milliseconds, in arrival order.
    pub fn latencies_ms(&self) -> &[f64] {
        &self.latencies_ms
    }

    /// Record the admission queue's depth as observed at one scheduling
    /// event (a submission or a dispatch).
    pub fn record_queue_depth(&mut self, depth: u64) {
        self.queue_depths.observe(depth as f64);
    }

    /// The queue-depth histogram, shaped for Prometheus exposition.
    pub fn queue_depth_hist(&self) -> &prom::ExpHistogram {
        &self.queue_depths
    }

    /// Tail-latency summary of the recorded samples, or `None` before the
    /// first job finishes.
    pub fn latency(&self) -> Option<LatencyStats> {
        LatencyStats::try_from_sample(&self.latencies_ms)
    }
}

/// Throughput of a serve-mode run in jobs per million cycles (`makespan` is
/// the span from the first arrival to the last completion).
///
/// # Panics
///
/// Panics if `makespan` is zero while jobs completed.
pub fn throughput_per_mcycle(jobs: usize, makespan: u64) -> f64 {
    if jobs == 0 {
        return 0.0;
    }
    assert!(makespan > 0, "jobs completed in a zero-cycle makespan");
    jobs as f64 * 1e6 / makespan as f64
}

/// Trailing moving average with the given window, as in the paper's Fig. 2b
/// (1000-cycle window over memory-request counts).
///
/// Output has the same length as the input; prefix positions average over
/// the elements seen so far.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for i in 0..xs.len() {
        sum += xs[i];
        if i >= window {
            sum -= xs[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_slowdown_are_inverse() {
        let s = Speedup::new(100, 125);
        assert!((s.value() - 0.8).abs() < 1e-12);
        assert!((s.slowdown() - 1.25).abs() < 1e-12);
        assert!((s.value() * s.slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_rejected() {
        let _ = Speedup::new(0, 1);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let xs = [0.5, 0.9, 1.3, 2.0];
        assert!(geomean(&xs) < mean(&xs));
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn fairness_perfect_balance_is_one() {
        assert!((fairness(&[1.3, 1.3, 1.3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_decreases_with_imbalance() {
        let balanced = fairness(&[1.1, 1.15]);
        let skewed = fairness(&[1.0, 2.0]);
        assert!(balanced > skewed);
        assert!(skewed < 0.8);
    }

    #[test]
    fn fairness_matches_hand_computation() {
        // slowdowns 1.0, 1.5: mean 1.25, stddev 0.25 -> 1 - 0.2 = 0.8.
        assert!((fairness(&[1.0, 1.5]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cdf_fraction_and_points() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        assert!((c.fraction_at_or_below(1.5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.fraction_at_or_below(3.0) - 1.0).abs() < 1e-12);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        let pts = c.points();
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn cdf_quantiles_monotone() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = c.quantile(q);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn box_stats_ordering() {
        let b = BoxStats::from_sample(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.range(), 4.0);
    }

    #[test]
    fn moving_average_constant_signal() {
        let xs = vec![2.0; 10];
        let ma = moving_average(&xs, 3);
        assert!(ma.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_smooths_spike() {
        let mut xs = vec![0.0; 10];
        xs[5] = 10.0;
        let ma = moving_average(&xs, 5);
        let peak = ma.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 2.0).abs() < 1e-12, "spike spread over window");
        assert_eq!(ma.len(), xs.len());
    }

    #[test]
    fn moving_average_prefix_uses_partial_window() {
        let ma = moving_average(&[4.0, 0.0], 4);
        assert_eq!(ma[0], 4.0);
        assert_eq!(ma[1], 2.0);
    }

    #[test]
    fn latency_stats_ordering_and_values() {
        let cycles: Vec<u64> = (1..=100).collect();
        let s = LatencyStats::from_cycles(&cycles);
        assert_eq!(s.p50, 50.0); // nearest-rank: ceil(0.5 * 100) = rank 50
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn quantile_is_exact_on_small_ranks() {
        // Two observations: anything at or below 0.5 must pick the first.
        let c = Cdf::new(vec![10.0, 20.0]);
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(0.5), 10.0);
        assert_eq!(c.quantile(0.51), 20.0);
        assert_eq!(c.quantile(1.0), 20.0);
        // The old round()-based interpolation returned 20.0 for q = 0.5
        // (round(0.5 * 1) rounds up), over-reporting the median.
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(0.75), 3.0);
        assert_eq!(c.quantile(0.76), 4.0);
    }

    #[test]
    fn try_from_handles_empty_and_singleton() {
        assert_eq!(LatencyStats::try_from_sample(&[]), None);
        assert_eq!(LatencyStats::try_from_cycles(&[]), None);
        let s = LatencyStats::try_from_cycles(&[7]).expect("one sample is enough");
        assert_eq!((s.p50, s.p95, s.p99, s.max), (7.0, 7.0, 7.0, 7.0));
        assert_eq!(LatencyStats::try_from_sample(&[7.0]), Some(s));
    }

    #[test]
    fn service_stats_accounting() {
        let mut s = ServiceStats::new();
        assert_eq!(s.in_system(), 0);
        s.submissions = 10;
        s.rejects = 3;
        s.completions = 2;
        s.cancellations = 1;
        s.over_budget = 1;
        assert_eq!(s.finished(), 4);
        assert_eq!(s.in_system(), 3);
        assert!(s.latency().is_none());
        s.record_latency_ms(5.0);
        s.record_latency_ms(15.0);
        let lat = s.latency().expect("two samples recorded");
        assert_eq!(s.latency_samples(), 2);
        assert_eq!(lat.p50, 5.0);
        assert_eq!(lat.max, 15.0);
    }

    #[test]
    fn latency_stats_single_observation() {
        let s = LatencyStats::from_cycles(&[42]);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (42.0, 42.0, 42.0, 42.0));
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn throughput_counts_jobs_per_mcycle() {
        assert_eq!(throughput_per_mcycle(0, 0), 0.0);
        assert!((throughput_per_mcycle(8, 2_000_000) - 4.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    /// The nearest-rank quantile, spelled as the definition rather than an
    /// index formula: the first sorted element whose cumulative count
    /// reaches `q * n` (the minimum for `q = 0`). `None` on an empty
    /// sample — the oracle the service's percentile exports are fenced
    /// against.
    fn oracle_quantile(sample: &[f64], q: f64) -> Option<f64> {
        if sample.is_empty() {
            return None;
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let idx = (0..n).find(|&i| (i + 1) as f64 / n as f64 >= q).unwrap_or(n - 1);
        Some(sorted[idx])
    }

    #[test]
    fn oracle_edge_cases() {
        assert_eq!(oracle_quantile(&[], 0.5), None);
        assert_eq!(oracle_quantile(&[3.0], 0.0), Some(3.0));
        assert_eq!(oracle_quantile(&[3.0], 0.99), Some(3.0));
        assert_eq!(oracle_quantile(&[2.0, 2.0, 2.0], 0.5), Some(2.0));
    }

    proptest! {
        #[test]
        fn prop_latency_percentiles_match_oracle(
            xs in proptest::collection::vec(0.0f64..1e6, 0..80),
        ) {
            match LatencyStats::try_from_sample(&xs) {
                None => prop_assert!(xs.is_empty()),
                Some(s) => {
                    prop_assert_eq!(s.p50, oracle_quantile(&xs, 0.5).expect("non-empty"));
                    prop_assert_eq!(s.p95, oracle_quantile(&xs, 0.95).expect("non-empty"));
                    prop_assert_eq!(s.p99, oracle_quantile(&xs, 0.99).expect("non-empty"));
                    prop_assert_eq!(s.max, oracle_quantile(&xs, 1.0).expect("non-empty"));
                }
            }
        }

        #[test]
        fn prop_all_equal_samples_collapse(x in -1e6f64..1e6, n in 1usize..40) {
            let s = LatencyStats::try_from_sample(&vec![x; n]).expect("non-empty");
            // Quantiles are observations, so they collapse exactly; the mean
            // only to summation rounding.
            prop_assert_eq!((s.p50, s.p95, s.p99, s.max), (x, x, x, x));
            prop_assert!((s.mean - x).abs() <= x.abs() * 1e-12);
        }

        #[test]
        fn prop_quantile_is_an_observation_and_covers(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..60),
            qp in 0u32..=1000,
        ) {
            let q = qp as f64 / 1000.0;
            let c = Cdf::new(xs.clone());
            let v = c.quantile(q);
            // Every quantile is an actual observation...
            prop_assert!(xs.contains(&v));
            // ...that covers at least fraction q of the sample...
            prop_assert!(c.fraction_at_or_below(v) >= q);
            // ...and is the smallest such observation.
            for &x in &xs {
                if x < v {
                    prop_assert!(c.fraction_at_or_below(x) < q);
                }
            }
        }

        #[test]
        fn prop_geomean_between_min_and_max(xs in proptest::collection::vec(0.01f64..100.0, 1..20)) {
            let g = geomean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
        }

        #[test]
        fn prop_fairness_at_most_one(xs in proptest::collection::vec(0.1f64..10.0, 1..16)) {
            let f = fairness(&xs);
            prop_assert!(f <= 1.0 + 1e-12);
            // Eq. 1 can go negative only when sigma > mu; with positive
            // slowdowns sigma < mu * sqrt(n), so just check it is finite.
            prop_assert!(f.is_finite());
        }

        #[test]
        fn prop_fairness_is_scale_invariant(xs in proptest::collection::vec(0.1f64..10.0, 2..12), s in 0.5f64..5.0) {
            let scaled: Vec<f64> = xs.iter().map(|x| x * s).collect();
            prop_assert!((fairness(&xs) - fairness(&scaled)).abs() < 1e-9);
        }

        #[test]
        fn prop_cdf_fraction_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..50), a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let c = Cdf::new(xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.fraction_at_or_below(lo) <= c.fraction_at_or_below(hi));
        }

        #[test]
        fn prop_moving_average_preserves_bounds(xs in proptest::collection::vec(0.0f64..10.0, 1..64), w in 1usize..10) {
            let ma = moving_average(&xs, w);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(ma.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
        }
    }
}
