//! Lint a Prometheus exposition document read from stdin.
//!
//! CI pipes a live `GET /metrics` scrape through this binary so the
//! format contract (`# HELP` before `# TYPE` before samples, `_total`
//! counter naming, histogram bucket/`+Inf`/`_sum`/`_count` shape) is
//! enforced against the daemon's real output, not just unit fixtures.
//! Exit 0 when clean; exit 1 with the violation on stderr otherwise.

use std::io::Read;

fn main() {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("mnpu_promlint: failed to read stdin: {e}");
        std::process::exit(1);
    }
    match mnpu_metrics::prom::lint(&text) {
        Ok(()) => {
            let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
            println!("mnpu_promlint: ok ({families} families)");
        }
        Err(e) => {
            eprintln!("mnpu_promlint: {e}");
            std::process::exit(1);
        }
    }
}
