//! Prometheus text-exposition rendering and linting.
//!
//! The daemon's `/metrics` endpoint speaks the Prometheus text format,
//! version `0.0.4`: every family gets `# HELP` and `# TYPE` lines,
//! counters are `_total`-suffixed, histograms expose cumulative
//! `_bucket{le="..."}` series plus `_sum`/`_count`. This module owns the
//! rendering helpers, the [`ExpHistogram`] the daemon aggregates into,
//! and [`lint`] — a format checker strict enough that a unit test (and
//! the CI smoke scrape) can hold the endpoint to the spec.

/// The content type a compliant text-exposition endpoint must serve.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// A histogram over exponentially spaced buckets, shaped for Prometheus
/// exposition: observations land in the first bucket whose upper bound is
/// ≥ the value (cumulative `le` semantics), with an implicit `+Inf`
/// overflow bucket, a running sum, and a total count.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl ExpHistogram {
    /// A histogram over the given ascending upper bounds (the `+Inf`
    /// bucket is implicit).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        ExpHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Power-of-two bounds `1, 2, 4, … 2^(n-1)` — the queue-depth shape.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pow2(n: usize) -> Self {
        let bounds: Vec<f64> = (0..n as u32).map(|i| f64::from(1u32 << i)).collect();
        ExpHistogram::with_bounds(&bounds)
    }

    /// Doubling bounds from 1 ms to ~2 minutes — the job-latency shape.
    pub fn latency_seconds() -> Self {
        let bounds: Vec<f64> = (0..18).map(|i| 0.001 * f64::from(1u32 << i)).collect();
        ExpHistogram::with_bounds(&bounds)
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The cumulative `(upper bound, count ≤ bound)` series, excluding the
    /// `+Inf` bucket (whose cumulative count is [`ExpHistogram::count`]).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        self.bounds
            .iter()
            .zip(&self.counts)
            .map(|(&b, &c)| {
                acc += c;
                (b, acc)
            })
            .collect()
    }
}

impl Default for ExpHistogram {
    /// The queue-depth shape ([`ExpHistogram::pow2`] with 10 buckets).
    fn default() -> Self {
        ExpHistogram::pow2(10)
    }
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Render a number the exposition format accepts (no exponent for the
/// integral values the daemon exports; trims trailing zeros off floats).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Append one counter family. `name` must end in `_total` ([`lint`]
/// enforces it).
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    out.push_str(&format!("{name} {value}\n"));
}

/// Append one gauge family.
pub fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    header(out, name, help, "gauge");
    out.push_str(&format!("{name} {}\n", num(value)));
}

/// Append one histogram family: cumulative buckets, `+Inf`, sum, count.
pub fn histogram(out: &mut String, name: &str, help: &str, h: &ExpHistogram) {
    header(out, name, help, "histogram");
    for (le, c) in h.cumulative() {
        out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {c}\n", num(le)));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", num(h.sum())));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Check `text` against the text-exposition rules the daemon commits to:
///
/// * every sample belongs to a family announced by `# HELP` + `# TYPE`
///   lines (in that order, before the samples);
/// * no family is announced twice;
/// * counter families are `_total`-suffixed;
/// * histogram families expose `_bucket` series with ascending `le`
///   labels ending at `+Inf`, non-decreasing cumulative counts, and
///   matching `_sum`/`_count` samples;
/// * every sample value parses as a number.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn lint(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashMap<String, bool> = HashMap::new();
    // Histogram bookkeeping: (saw +Inf, last cumulative, sum seen, count seen).
    let mut hist: HashMap<String, (bool, u64, bool, bool)> = HashMap::new();

    let family_of = |raw: &str, types: &HashMap<String, String>| -> (String, String) {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = raw.strip_suffix(suffix) {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    return (base.to_string(), suffix.to_string());
                }
            }
        }
        (raw.to_string(), String::new())
    };

    for (n, line) in text.lines().enumerate() {
        let err = |msg: String| Err(format!("line {}: {msg}", n + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or_default().to_string();
            if rest.len() <= name.len() {
                return err(format!("HELP for {name} has no text"));
            }
            if helps.insert(name.clone(), true).is_some() {
                return err(format!("family {name} announced twice"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or_default().to_string();
            let kind = it.next().unwrap_or_default().to_string();
            if !helps.contains_key(&name) {
                return err(format!("TYPE for {name} precedes its HELP"));
            }
            if !matches!(kind.as_str(), "counter" | "gauge" | "histogram" | "summary") {
                return err(format!("unknown type {kind} for {name}"));
            }
            if kind == "counter" && !name.ends_with("_total") {
                return err(format!("counter {name} is not _total-suffixed"));
            }
            if types.insert(name.clone(), kind).is_some() {
                return err(format!("family {name} typed twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // A sample: name{labels} value
        let (raw_name, rest) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return err("sample with no value".into()),
        };
        let (labels, value) = if let Some(rest) = rest.strip_prefix('{') {
            let close = match rest.find('}') {
                Some(c) => c,
                None => return err("unclosed label set".into()),
            };
            (&rest[..close], rest[close + 1..].trim())
        } else {
            ("", rest.trim())
        };
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => return err(format!("unparseable value {value:?} for {raw_name}")),
        };
        let (family, suffix) = family_of(raw_name, &types);
        let Some(kind) = types.get(&family) else {
            return err(format!("sample {raw_name} has no TYPE"));
        };
        if kind == "histogram" {
            if suffix.is_empty() {
                return err(format!("bare sample {raw_name} inside histogram family"));
            }
            let entry = hist.entry(family.clone()).or_insert((false, 0, false, false));
            match suffix.as_str() {
                "_bucket" => {
                    let le = labels
                        .split(',')
                        .find_map(|l| l.strip_prefix("le=\""))
                        .and_then(|l| l.strip_suffix('"'))
                        .map(str::to_string);
                    let Some(le) = le else {
                        return err(format!("{raw_name} bucket without le label"));
                    };
                    if entry.0 {
                        return err(format!("{family} has buckets after +Inf"));
                    }
                    if le == "+Inf" {
                        entry.0 = true;
                    } else if le.parse::<f64>().is_err() {
                        return err(format!("{family} bucket with bad le {le:?}"));
                    }
                    let c = value as u64;
                    if c < entry.1 {
                        return err(format!("{family} cumulative bucket counts decrease"));
                    }
                    entry.1 = c;
                }
                "_sum" => entry.2 = true,
                "_count" => entry.3 = true,
                _ => unreachable!("family_of only yields known suffixes"),
            }
        }
    }
    for (family, (inf, _, sum, count)) in &hist {
        if !inf {
            return Err(format!("histogram {family} lacks a +Inf bucket"));
        }
        if !sum || !count {
            return Err(format!("histogram {family} lacks _sum or _count"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = ExpHistogram::pow2(4); // bounds 1 2 4 8
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.cumulative(), vec![(1.0, 2), (2.0, 2), (4.0, 3), (8.0, 3)]);
    }

    #[test]
    fn rendered_families_pass_the_lint() {
        let mut out = String::new();
        counter(&mut out, "jobs_done_total", "Jobs completed.", 3);
        gauge(&mut out, "queue_depth", "Jobs waiting.", 2.0);
        let mut h = ExpHistogram::latency_seconds();
        h.observe(0.25);
        h.observe(4.0);
        histogram(&mut out, "job_latency_seconds", "Job latency.", &h);
        lint(&out).expect("rendered output is compliant");
        assert!(out.contains("# TYPE jobs_done_total counter"));
        assert!(out.contains("job_latency_seconds_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn lint_rejects_spec_violations() {
        // Counter without _total.
        let mut bad = String::new();
        header(&mut bad, "jobs_done", "x", "counter");
        assert!(lint(&bad).unwrap_err().contains("_total"));
        // Sample with no TYPE.
        assert!(lint("mystery_metric 1\n").unwrap_err().contains("no TYPE"));
        // TYPE before HELP.
        assert!(lint("# TYPE a_total counter\n").unwrap_err().contains("precedes"));
        // Histogram without +Inf.
        let partial = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 0\nh_sum 0\nh_count 0\n";
        assert!(lint(partial).unwrap_err().contains("+Inf"));
        // Unparseable value.
        let bad_val = "# HELP g x\n# TYPE g gauge\ng nope\n";
        assert!(lint(bad_val).unwrap_err().contains("unparseable"));
    }

    #[test]
    fn default_histogram_is_the_queue_shape() {
        let mut h = ExpHistogram::default();
        h.observe(512.0);
        h.observe(1024.0);
        assert_eq!(h.count(), 2);
        let cum = h.cumulative();
        assert_eq!(cum.last().unwrap().0, 512.0);
        assert_eq!(cum.last().unwrap().1, 1);
    }
}
