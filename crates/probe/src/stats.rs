//! The aggregating probe and the report it produces.

use crate::hist::Histogram;
use crate::{CoreState, Event, Phase, Probe};
use mnpu_snapshot::{Reader, SnapError, Writer};
use std::collections::HashMap;

/// Default per-epoch bucketing window (global DRAM cycles) for the
/// per-core time series.
pub const DEFAULT_EPOCH_CYCLES: u64 = 4096;

/// Cycle-exact attribution of a core's active cycles to one of four
/// mutually exclusive categories. The categories sum to the core's active
/// cycles ([`CoreStats::active_cycles`]) — a property the engine test suite
/// asserts on randomized workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles with the systolic array busy.
    pub compute: u64,
    /// Cycles stalled with a transaction parked on a page-table walk.
    pub wait_translation: u64,
    /// Cycles stalled on an in-flight tile load.
    pub wait_load: u64,
    /// Cycles stalled draining stores (including the layer barrier).
    pub wait_store: u64,
}

impl StallBreakdown {
    /// Sum of all four categories.
    pub fn total(&self) -> u64 {
        self.compute + self.wait_translation + self.wait_load + self.wait_store
    }

    fn bucket_mut(&mut self, state: CoreState) -> Option<&mut u64> {
        match state {
            CoreState::Compute => Some(&mut self.compute),
            CoreState::WaitTranslation => Some(&mut self.wait_translation),
            CoreState::WaitLoad => Some(&mut self.wait_load),
            CoreState::WaitStore => Some(&mut self.wait_store),
            CoreState::Idle | CoreState::Finished => None,
        }
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.compute += other.compute;
        self.wait_translation += other.wait_translation;
        self.wait_load += other.wait_load;
        self.wait_store += other.wait_store;
    }
}

/// Per-core aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Global cycles between the core's start and finish (filled in by the
    /// engine when the report is assembled; the stall categories sum to it).
    pub active_cycles: u64,
    /// Cycle-exact stall breakdown.
    pub stall: StallBreakdown,
    /// TLB lookup hits.
    pub tlb_hits: u64,
    /// TLB lookup misses.
    pub tlb_misses: u64,
    /// This core's TLB entries evicted (by any core, under a shared TLB).
    pub tlb_evictions: u64,
    /// Page-table walks started.
    pub walks_started: u64,
    /// Page-table walks completed.
    pub walks_done: u64,
    /// Walk attempts deferred because the walker pool was exhausted.
    pub walker_stalls: u64,
    /// Transactions accepted by the memory system.
    pub dma_grants: u64,
    /// Transactions bounced off a full DRAM queue.
    pub dma_retries: u64,
    /// DRAM commands for this core that hit an open row.
    pub row_hits: u64,
    /// DRAM commands for this core that opened a closed row.
    pub row_misses: u64,
    /// DRAM commands for this core that displaced an open row.
    pub row_conflicts: u64,
    /// Page-table walk latency (issue of the first access to TLB fill),
    /// in global cycles.
    pub walk_latency: Histogram,
    /// DRAM transactions serviced per epoch.
    pub epoch_dram_txns: Vec<u64>,
    /// TLB misses per epoch.
    pub epoch_tlb_misses: Vec<u64>,
}

impl CoreStats {
    /// TLB hit rate in `[0, 1]` (0 when never probed).
    pub fn tlb_hit_rate(&self) -> f64 {
        let t = self.tlb_hits + self.tlb_misses;
        if t == 0 {
            return 0.0;
        }
        self.tlb_hits as f64 / t as f64
    }

    /// DRAM row-buffer hit rate in `[0, 1]` of this core's commands.
    pub fn row_hit_rate(&self) -> f64 {
        let t = self.row_hits + self.row_misses + self.row_conflicts;
        if t == 0 {
            return 0.0;
        }
        self.row_hits as f64 / t as f64
    }

    fn merge(&mut self, other: &CoreStats) {
        self.active_cycles += other.active_cycles;
        self.stall.merge(&other.stall);
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.tlb_evictions += other.tlb_evictions;
        self.walks_started += other.walks_started;
        self.walks_done += other.walks_done;
        self.walker_stalls += other.walker_stalls;
        self.dma_grants += other.dma_grants;
        self.dma_retries += other.dma_retries;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.walk_latency.merge(&other.walk_latency);
        merge_series(&mut self.epoch_dram_txns, &other.epoch_dram_txns);
        merge_series(&mut self.epoch_tlb_misses, &other.epoch_tlb_misses);
    }
}

fn merge_series(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Chip-level DRAM contention aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramContention {
    /// Commands that hit an open row.
    pub row_hits: u64,
    /// Commands that opened a closed row.
    pub row_misses: u64,
    /// Commands that displaced an open row.
    pub row_conflicts: u64,
    /// All-bank refreshes committed.
    pub refreshes: u64,
    /// Transactions that entered a channel queue.
    pub issues: u64,
    /// Cycles each transaction waited in its channel queue before its CAS.
    pub queue_residency: Histogram,
    /// Channel-queue occupancy observed at each arrival (reorder-window
    /// pressure).
    pub queue_depth: Histogram,
}

impl DramContention {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let t = self.row_hits + self.row_misses + self.row_conflicts;
        if t == 0 {
            return 0.0;
        }
        self.row_hits as f64 / t as f64
    }

    fn merge(&mut self, other: &DramContention) {
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.refreshes += other.refreshes;
        self.issues += other.issues;
        self.queue_residency.merge(&other.queue_residency);
        self.queue_depth.merge(&other.queue_depth);
    }
}

/// One closed tile-phase interval, for the Chrome-trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Start cycle (global clock).
    pub start: u64,
    /// End cycle (global clock); `end >= start`.
    pub end: u64,
    /// Owning core.
    pub core: usize,
    /// Which pipeline phase.
    pub phase: Phase,
    /// Flattened tile index.
    pub id: u64,
}

/// One completed job lifetime in serve mode: arrival into the scheduler
/// queue, dispatch onto a core, workload completion. All cycles are on the
/// global clock, with `arrival <= dispatch <= completion`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobSpan {
    /// Arrival cycle (the matching [`Event::JobArrive`]).
    pub arrival: u64,
    /// Dispatch cycle (the matching [`Event::JobDispatch`]).
    pub dispatch: u64,
    /// Completion cycle (the matching [`Event::JobComplete`]).
    pub completion: u64,
    /// Core the job ran on.
    pub core: usize,
    /// Scheduler-assigned job id.
    pub job: u64,
}

/// Scheduler-level aggregates (serve mode only; all zero for batch runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedStats {
    /// Jobs that entered the queue.
    pub arrivals: u64,
    /// Jobs dispatched onto a core.
    pub dispatches: u64,
    /// Jobs that ran to completion.
    pub completions: u64,
    /// Queue occupancy sampled at every arrival and dispatch.
    pub queue_depth: Histogram,
}

impl SchedStats {
    fn merge(&mut self, other: &SchedStats) {
        self.arrivals += other.arrivals;
        self.dispatches += other.dispatches;
        self.completions += other.completions;
        self.queue_depth.merge(&other.queue_depth);
    }
}

/// Everything a [`StatsProbe`] aggregated over one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    /// Window (global cycles) of the per-epoch series.
    pub epoch_cycles: u64,
    /// Per-core aggregates, indexed by core.
    pub cores: Vec<CoreStats>,
    /// Chip-level DRAM contention counters.
    pub dram: DramContention,
    /// Closed tile-phase spans, sorted by `(start, end, core, phase, id)`.
    pub spans: Vec<Span>,
    /// Completed job lifetimes, sorted by `(arrival, dispatch, completion,
    /// core, job)`. Empty for batch runs.
    pub jobs: Vec<JobSpan>,
    /// Scheduler counters. All zero for batch runs.
    pub sched: SchedStats,
}

impl StatsReport {
    /// Mutable access to core `core`'s aggregates, growing the vector with
    /// zeroed entries as needed (a core that never emitted an event still
    /// deserves a row in the report).
    pub fn core_mut(&mut self, core: usize) -> &mut CoreStats {
        if self.cores.len() <= core {
            self.cores.resize_with(core + 1, CoreStats::default);
        }
        &mut self.cores[core]
    }
}

/// Per-core state-integration bookkeeping.
#[derive(Debug, Clone, Copy)]
struct StateTrack {
    state: CoreState,
    since: u64,
}

impl Default for StateTrack {
    fn default() -> Self {
        StateTrack { state: CoreState::Idle, since: 0 }
    }
}

/// The aggregating probe: counters, histograms, per-epoch series, the
/// stall-state integration, and phase spans. Everything it keeps is
/// bounded by core count, bucket count and tile count — never by cycle
/// count — so long runs stay cheap.
#[derive(Debug, Clone)]
pub struct StatsProbe {
    report: StatsReport,
    track: Vec<StateTrack>,
    open_phases: HashMap<(usize, Phase, u64), u64>,
    walk_starts: HashMap<u64, u64>,
    /// Jobs seen arriving but not yet completed:
    /// job id → (arrival, dispatch/core once dispatched).
    open_jobs: HashMap<u64, (u64, Option<(u64, usize)>)>,
}

impl Default for StatsProbe {
    fn default() -> Self {
        StatsProbe::new(DEFAULT_EPOCH_CYCLES)
    }
}

impl StatsProbe {
    /// A probe bucketing its time series into `epoch_cycles`-cycle epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_cycles` is zero.
    pub fn new(epoch_cycles: u64) -> Self {
        assert!(epoch_cycles > 0, "epoch must be positive");
        StatsProbe {
            report: StatsReport { epoch_cycles, ..StatsReport::default() },
            track: Vec::new(),
            open_phases: HashMap::new(),
            walk_starts: HashMap::new(),
            open_jobs: HashMap::new(),
        }
    }

    fn core_mut(&mut self, core: usize) -> &mut CoreStats {
        if self.report.cores.len() <= core {
            self.report.cores.resize_with(core + 1, CoreStats::default);
            self.track.resize_with(core + 1, StateTrack::default);
        }
        &mut self.report.cores[core]
    }

    fn bump_epoch(series: &mut Vec<u64>, epoch: usize) {
        if series.len() <= epoch {
            series.resize(epoch + 1, 0);
        }
        series[epoch] += 1;
    }
}

/// Section tag for a serialized [`StatsProbe`].
const PROBE_TAG: u8 = 0xA0;

fn phase_code(p: Phase) -> u8 {
    match p {
        Phase::Load => 0,
        Phase::Compute => 1,
        Phase::Store => 2,
    }
}

fn phase_from(c: u8) -> Result<Phase, SnapError> {
    Ok(match c {
        0 => Phase::Load,
        1 => Phase::Compute,
        2 => Phase::Store,
        _ => return Err(SnapError::BadValue("unknown phase code")),
    })
}

fn state_code(s: CoreState) -> u8 {
    match s {
        CoreState::Idle => 0,
        CoreState::Compute => 1,
        CoreState::WaitTranslation => 2,
        CoreState::WaitLoad => 3,
        CoreState::WaitStore => 4,
        CoreState::Finished => 5,
    }
}

fn state_from(c: u8) -> Result<CoreState, SnapError> {
    Ok(match c {
        0 => CoreState::Idle,
        1 => CoreState::Compute,
        2 => CoreState::WaitTranslation,
        3 => CoreState::WaitLoad,
        4 => CoreState::WaitStore,
        5 => CoreState::Finished,
        _ => return Err(SnapError::BadValue("unknown core-state code")),
    })
}

impl StallBreakdown {
    fn save(&self, w: &mut Writer) {
        w.u64(self.compute);
        w.u64(self.wait_translation);
        w.u64(self.wait_load);
        w.u64(self.wait_store);
    }

    fn load(r: &mut Reader<'_>) -> Result<StallBreakdown, SnapError> {
        Ok(StallBreakdown {
            compute: r.u64()?,
            wait_translation: r.u64()?,
            wait_load: r.u64()?,
            wait_store: r.u64()?,
        })
    }
}

impl CoreStats {
    fn save(&self, w: &mut Writer) {
        w.u64(self.active_cycles);
        self.stall.save(w);
        w.u64(self.tlb_hits);
        w.u64(self.tlb_misses);
        w.u64(self.tlb_evictions);
        w.u64(self.walks_started);
        w.u64(self.walks_done);
        w.u64(self.walker_stalls);
        w.u64(self.dma_grants);
        w.u64(self.dma_retries);
        w.u64(self.row_hits);
        w.u64(self.row_misses);
        w.u64(self.row_conflicts);
        self.walk_latency.save_state(w);
        w.seq(&self.epoch_dram_txns, |w, &v| w.u64(v));
        w.seq(&self.epoch_tlb_misses, |w, &v| w.u64(v));
    }

    fn load(r: &mut Reader<'_>) -> Result<CoreStats, SnapError> {
        Ok(CoreStats {
            active_cycles: r.u64()?,
            stall: StallBreakdown::load(r)?,
            tlb_hits: r.u64()?,
            tlb_misses: r.u64()?,
            tlb_evictions: r.u64()?,
            walks_started: r.u64()?,
            walks_done: r.u64()?,
            walker_stalls: r.u64()?,
            dma_grants: r.u64()?,
            dma_retries: r.u64()?,
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_conflicts: r.u64()?,
            walk_latency: Histogram::load_state(r)?,
            epoch_dram_txns: r.seq(|r| r.u64())?,
            epoch_tlb_misses: r.seq(|r| r.u64())?,
        })
    }
}

impl DramContention {
    fn save(&self, w: &mut Writer) {
        w.u64(self.row_hits);
        w.u64(self.row_misses);
        w.u64(self.row_conflicts);
        w.u64(self.refreshes);
        w.u64(self.issues);
        self.queue_residency.save_state(w);
        self.queue_depth.save_state(w);
    }

    fn load(r: &mut Reader<'_>) -> Result<DramContention, SnapError> {
        Ok(DramContention {
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_conflicts: r.u64()?,
            refreshes: r.u64()?,
            issues: r.u64()?,
            queue_residency: Histogram::load_state(r)?,
            queue_depth: Histogram::load_state(r)?,
        })
    }
}

impl SchedStats {
    fn save(&self, w: &mut Writer) {
        w.u64(self.arrivals);
        w.u64(self.dispatches);
        w.u64(self.completions);
        self.queue_depth.save_state(w);
    }

    fn load(r: &mut Reader<'_>) -> Result<SchedStats, SnapError> {
        Ok(SchedStats {
            arrivals: r.u64()?,
            dispatches: r.u64()?,
            completions: r.u64()?,
            queue_depth: Histogram::load_state(r)?,
        })
    }
}

impl Probe for StatsProbe {
    const ENABLED: bool = true;

    fn record(&mut self, cycle: u64, event: Event) {
        let epoch = (cycle / self.report.epoch_cycles) as usize;
        match event {
            Event::DramIssue { channel: _, queue_depth } => {
                self.report.dram.issues += 1;
                self.report.dram.queue_depth.record(queue_depth as u64);
            }
            Event::DramRowHit { core, residency, .. } => {
                self.report.dram.row_hits += 1;
                self.report.dram.queue_residency.record(residency);
                let c = self.core_mut(core);
                c.row_hits += 1;
                StatsProbe::bump_epoch(&mut self.report.cores[core].epoch_dram_txns, epoch);
            }
            Event::DramRowMiss { core, residency, .. } => {
                self.report.dram.row_misses += 1;
                self.report.dram.queue_residency.record(residency);
                let c = self.core_mut(core);
                c.row_misses += 1;
                StatsProbe::bump_epoch(&mut self.report.cores[core].epoch_dram_txns, epoch);
            }
            Event::DramRowConflict { core, residency, .. } => {
                self.report.dram.row_conflicts += 1;
                self.report.dram.queue_residency.record(residency);
                let c = self.core_mut(core);
                c.row_conflicts += 1;
                StatsProbe::bump_epoch(&mut self.report.cores[core].epoch_dram_txns, epoch);
            }
            Event::DramRefresh { .. } => self.report.dram.refreshes += 1,
            Event::TlbHit { core } => self.core_mut(core).tlb_hits += 1,
            Event::TlbMiss { core } => {
                self.core_mut(core).tlb_misses += 1;
                StatsProbe::bump_epoch(&mut self.report.cores[core].epoch_tlb_misses, epoch);
            }
            Event::TlbEvict { core } => self.core_mut(core).tlb_evictions += 1,
            Event::WalkStart { core, walk } => {
                self.core_mut(core).walks_started += 1;
                self.walk_starts.insert(walk, cycle);
            }
            Event::WalkDone { core, walk } => {
                let c = self.core_mut(core);
                c.walks_done += 1;
                if let Some(start) = self.walk_starts.remove(&walk) {
                    self.report.cores[core].walk_latency.record(cycle.saturating_sub(start));
                }
            }
            Event::WalkerStall { core } => self.core_mut(core).walker_stalls += 1,
            Event::DmaGrant { core } => self.core_mut(core).dma_grants += 1,
            Event::DmaRetry { core } => self.core_mut(core).dma_retries += 1,
            Event::PhaseBegin { core, phase, id } => {
                self.core_mut(core); // ensure the core exists in the report
                self.open_phases.insert((core, phase, id), cycle);
            }
            Event::PhaseEnd { core, phase, id } => {
                if let Some(start) = self.open_phases.remove(&(core, phase, id)) {
                    self.report.spans.push(Span { start, end: cycle, core, phase, id });
                }
            }
            Event::CoreState { core, state } => {
                self.core_mut(core);
                let t = &mut self.track[core];
                let (prev, since) = (t.state, t.since);
                t.state = state;
                t.since = cycle;
                if let Some(b) = self.report.cores[core].stall.bucket_mut(prev) {
                    *b += cycle - since;
                }
            }
            Event::JobArrive { job, queue_depth } => {
                self.report.sched.arrivals += 1;
                self.report.sched.queue_depth.record(queue_depth as u64);
                self.open_jobs.insert(job, (cycle, None));
            }
            Event::JobDispatch { job, core, queue_depth } => {
                self.report.sched.dispatches += 1;
                self.report.sched.queue_depth.record(queue_depth as u64);
                if let Some(open) = self.open_jobs.get_mut(&job) {
                    open.1 = Some((cycle, core));
                }
            }
            Event::JobComplete { job, core } => {
                self.report.sched.completions += 1;
                if let Some((arrival, Some((dispatch, dcore)))) = self.open_jobs.remove(&job) {
                    debug_assert_eq!(core, dcore, "job completed on a different core");
                    self.report.jobs.push(JobSpan {
                        arrival,
                        dispatch,
                        completion: cycle,
                        core,
                        job,
                    });
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        let n = self.report.cores.len().max(other.report.cores.len());
        if n > 0 {
            self.core_mut(n - 1);
        }
        for (i, c) in other.report.cores.iter().enumerate() {
            self.report.cores[i].merge(c);
        }
        self.report.dram.merge(&other.report.dram);
        self.report.spans.extend(other.report.spans);
        self.report.jobs.extend(other.report.jobs);
        self.report.sched.merge(&other.report.sched);
    }

    fn into_report(mut self) -> Option<StatsReport> {
        self.report.spans.sort_unstable();
        self.report.jobs.sort_unstable();
        Some(self.report)
    }

    fn save_state(&self, w: &mut Writer) {
        w.tag(PROBE_TAG);
        w.u64(self.report.epoch_cycles);
        w.seq(&self.report.cores, |w, c| c.save(w));
        self.report.dram.save(w);
        w.seq(&self.report.spans, |w, s| {
            w.u64(s.start);
            w.u64(s.end);
            w.usize(s.core);
            w.u8(phase_code(s.phase));
            w.u64(s.id);
        });
        w.seq(&self.report.jobs, |w, j| {
            w.u64(j.arrival);
            w.u64(j.dispatch);
            w.u64(j.completion);
            w.usize(j.core);
            w.u64(j.job);
        });
        self.report.sched.save(w);
        w.seq(&self.track, |w, t| {
            w.u8(state_code(t.state));
            w.u64(t.since);
        });
        // The open-interval maps are HashMaps whose iteration order is not
        // deterministic; serialize in sorted key order so equal probes
        // produce byte-equal payloads.
        let mut phases: Vec<_> = self.open_phases.iter().collect();
        phases.sort_unstable_by_key(|&(k, _)| *k);
        w.seq(&phases, |w, &(&(core, phase, id), &start)| {
            w.usize(core);
            w.u8(phase_code(phase));
            w.u64(id);
            w.u64(start);
        });
        let mut walks: Vec<_> = self.walk_starts.iter().collect();
        walks.sort_unstable_by_key(|&(k, _)| *k);
        w.seq(&walks, |w, &(&walk, &start)| {
            w.u64(walk);
            w.u64(start);
        });
        let mut jobs: Vec<_> = self.open_jobs.iter().collect();
        jobs.sort_unstable_by_key(|&(k, _)| *k);
        w.seq(&jobs, |w, &(&job, &(arrival, dispatched))| {
            w.u64(job);
            w.u64(arrival);
            w.opt(&dispatched, |w, &(cycle, core)| {
                w.u64(cycle);
                w.usize(core);
            });
        });
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(PROBE_TAG)?;
        let epoch_cycles = r.u64()?;
        if epoch_cycles == 0 {
            return Err(SnapError::BadValue("probe epoch must be positive"));
        }
        let cores = r.seq(CoreStats::load)?;
        let dram = DramContention::load(r)?;
        let spans = r.seq(|r| {
            Ok(Span {
                start: r.u64()?,
                end: r.u64()?,
                core: r.usize()?,
                phase: phase_from(r.u8()?)?,
                id: r.u64()?,
            })
        })?;
        let jobs = r.seq(|r| {
            Ok(JobSpan {
                arrival: r.u64()?,
                dispatch: r.u64()?,
                completion: r.u64()?,
                core: r.usize()?,
                job: r.u64()?,
            })
        })?;
        let sched = SchedStats::load(r)?;
        let track = r.seq(|r| Ok(StateTrack { state: state_from(r.u8()?)?, since: r.u64()? }))?;
        if track.len() != cores.len() {
            return Err(SnapError::BadValue("probe track/core length mismatch"));
        }
        let open_phases = r
            .seq(|r| Ok(((r.usize()?, phase_from(r.u8()?)?, r.u64()?), r.u64()?)))?
            .into_iter()
            .collect();
        let walk_starts = r.seq(|r| Ok((r.u64()?, r.u64()?)))?.into_iter().collect();
        let open_jobs = r
            .seq(|r| {
                let job = r.u64()?;
                let arrival = r.u64()?;
                let dispatched = r.opt(|r| Ok((r.u64()?, r.usize()?)))?;
                Ok((job, (arrival, dispatched)))
            })?
            .into_iter()
            .collect();
        self.report = StatsReport { epoch_cycles, cores, dram, spans, jobs, sched };
        self.track = track;
        self.open_phases = open_phases;
        self.walk_starts = walk_starts;
        self.open_jobs = open_jobs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_integration_is_cycle_exact() {
        let mut p = StatsProbe::default();
        // Idle [0,10), Compute [10,25), WaitLoad [25,40), Compute [40,60),
        // WaitStore [60,70), Finished at 70.
        for (t, s) in [
            (0, CoreState::Idle),
            (10, CoreState::Compute),
            (25, CoreState::WaitLoad),
            (40, CoreState::Compute),
            (60, CoreState::WaitStore),
            (70, CoreState::Finished),
        ] {
            p.record(t, Event::CoreState { core: 0, state: s });
        }
        let r = p.into_report().unwrap();
        let s = &r.cores[0].stall;
        assert_eq!(s.compute, 35);
        assert_eq!(s.wait_load, 15);
        assert_eq!(s.wait_store, 10);
        assert_eq!(s.wait_translation, 0);
        assert_eq!(s.total(), 60);
    }

    #[test]
    fn resampling_same_state_accumulates() {
        let mut p = StatsProbe::default();
        for t in [0, 5, 9, 12] {
            p.record(t, Event::CoreState { core: 0, state: CoreState::Compute });
        }
        p.record(20, Event::CoreState { core: 0, state: CoreState::Finished });
        let r = p.into_report().unwrap();
        assert_eq!(r.cores[0].stall.compute, 20);
    }

    #[test]
    fn walk_latency_pairs_start_and_done() {
        let mut p = StatsProbe::default();
        p.record(100, Event::WalkStart { core: 1, walk: 7 });
        p.record(340, Event::WalkDone { core: 1, walk: 7 });
        let r = p.into_report().unwrap();
        assert_eq!(r.cores[1].walk_latency.count(), 1);
        assert_eq!(r.cores[1].walk_latency.sum(), 240);
        assert_eq!(r.cores[1].walks_started, 1);
        assert_eq!(r.cores[1].walks_done, 1);
    }

    #[test]
    fn spans_pair_and_sort() {
        let mut p = StatsProbe::default();
        p.record(50, Event::PhaseBegin { core: 0, phase: Phase::Compute, id: 1 });
        p.record(10, Event::PhaseBegin { core: 0, phase: Phase::Load, id: 0 });
        p.record(45, Event::PhaseEnd { core: 0, phase: Phase::Load, id: 0 });
        p.record(90, Event::PhaseEnd { core: 0, phase: Phase::Compute, id: 1 });
        let r = p.into_report().unwrap();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0], Span { start: 10, end: 45, core: 0, phase: Phase::Load, id: 0 });
        assert_eq!(r.spans[1].phase, Phase::Compute);
    }

    #[test]
    fn merge_sums_both_halves() {
        let mut engine = StatsProbe::default();
        engine.record(0, Event::TlbMiss { core: 0 });
        engine.record(1, Event::TlbHit { core: 0 });
        let mut dram = StatsProbe::default();
        dram.record(5, Event::DramRowConflict { channel: 0, core: 0, residency: 12 });
        dram.record(6, Event::DramRowHit { channel: 1, core: 1, residency: 2 });
        engine.merge(dram);
        let r = engine.into_report().unwrap();
        assert_eq!(r.cores.len(), 2);
        assert_eq!(r.cores[0].tlb_misses, 1);
        assert_eq!(r.cores[0].row_conflicts, 1);
        assert_eq!(r.cores[1].row_hits, 1);
        assert_eq!(r.dram.row_conflicts, 1);
        assert_eq!(r.dram.queue_residency.count(), 2);
        assert!((r.dram.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_series_buckets_by_cycle() {
        let mut p = StatsProbe::new(100);
        p.record(10, Event::TlbMiss { core: 0 });
        p.record(150, Event::TlbMiss { core: 0 });
        p.record(199, Event::TlbMiss { core: 0 });
        p.record(901, Event::TlbMiss { core: 0 });
        let r = p.into_report().unwrap();
        assert_eq!(r.cores[0].epoch_tlb_misses.len(), 10);
        assert_eq!(r.cores[0].epoch_tlb_misses[0], 1);
        assert_eq!(r.cores[0].epoch_tlb_misses[1], 2);
        assert_eq!(r.cores[0].epoch_tlb_misses[9], 1);
    }

    #[test]
    #[should_panic(expected = "epoch must be positive")]
    fn zero_epoch_rejected() {
        let _ = StatsProbe::new(0);
    }

    #[test]
    fn job_lifetimes_pair_arrive_dispatch_complete() {
        let mut p = StatsProbe::default();
        p.record(0, Event::JobArrive { job: 0, queue_depth: 1 });
        p.record(5, Event::JobArrive { job: 1, queue_depth: 2 });
        p.record(5, Event::JobDispatch { job: 0, core: 2, queue_depth: 1 });
        p.record(9, Event::JobDispatch { job: 1, core: 0, queue_depth: 0 });
        p.record(100, Event::JobComplete { job: 1, core: 0 });
        p.record(120, Event::JobComplete { job: 0, core: 2 });
        let r = p.into_report().unwrap();
        assert_eq!(r.sched.arrivals, 2);
        assert_eq!(r.sched.dispatches, 2);
        assert_eq!(r.sched.completions, 2);
        assert_eq!(r.sched.queue_depth.count(), 4);
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(
            r.jobs[0],
            JobSpan { arrival: 0, dispatch: 5, completion: 120, core: 2, job: 0 }
        );
        assert_eq!(
            r.jobs[1],
            JobSpan { arrival: 5, dispatch: 9, completion: 100, core: 0, job: 1 }
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_open_state() {
        let mut p = StatsProbe::new(128);
        // Closed state of every kind...
        p.record(10, Event::TlbHit { core: 0 });
        p.record(20, Event::TlbMiss { core: 1 });
        p.record(30, Event::DramRowConflict { channel: 0, core: 0, residency: 7 });
        p.record(31, Event::DramIssue { channel: 0, queue_depth: 3 });
        p.record(40, Event::PhaseBegin { core: 0, phase: Phase::Load, id: 0 });
        p.record(90, Event::PhaseEnd { core: 0, phase: Phase::Load, id: 0 });
        p.record(50, Event::CoreState { core: 0, state: CoreState::Compute });
        // ...plus dangling open intervals that only matter after resume.
        p.record(100, Event::PhaseBegin { core: 1, phase: Phase::Store, id: 9 });
        p.record(110, Event::WalkStart { core: 1, walk: 42 });
        p.record(120, Event::JobArrive { job: 0, queue_depth: 1 });
        p.record(130, Event::JobDispatch { job: 0, core: 1, queue_depth: 0 });
        p.record(140, Event::JobArrive { job: 1, queue_depth: 1 });

        let mut w = Writer::new();
        p.save_state(&mut w);
        let bytes = w.finish();
        let mut q = StatsProbe::default();
        let mut r = Reader::new(&bytes);
        q.load_state(&mut r).unwrap();
        r.done().unwrap();

        // Identical futures close the open intervals identically.
        for probe in [&mut p, &mut q] {
            probe.record(200, Event::PhaseEnd { core: 1, phase: Phase::Store, id: 9 });
            probe.record(210, Event::WalkDone { core: 1, walk: 42 });
            probe.record(220, Event::JobComplete { job: 0, core: 1 });
            probe.record(230, Event::CoreState { core: 0, state: CoreState::Finished });
        }
        assert_eq!(p.into_report(), q.into_report());
    }

    #[test]
    fn snapshot_rejects_garbage_codes() {
        let p = StatsProbe::default();
        let mut w = Writer::new();
        p.save_state(&mut w);
        let mut bytes = w.finish();
        bytes[0] = 0xFF; // clobber the section tag
        let mut q = StatsProbe::default();
        assert!(q.load_state(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn merge_combines_job_spans_and_sched_counters() {
        let mut a = StatsProbe::default();
        a.record(0, Event::JobArrive { job: 0, queue_depth: 1 });
        a.record(0, Event::JobDispatch { job: 0, core: 0, queue_depth: 0 });
        a.record(10, Event::JobComplete { job: 0, core: 0 });
        let mut b = StatsProbe::default();
        b.record(3, Event::JobArrive { job: 1, queue_depth: 1 });
        a.merge(b);
        let r = a.into_report().unwrap();
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.sched.arrivals, 2);
        assert_eq!(r.sched.completions, 1);
    }
}
