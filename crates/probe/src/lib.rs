//! Zero-cost observability probes for the simulation pipeline.
//!
//! Every timing-relevant component of the simulator — the DRAM channel
//! scheduler, the MMU/TLB path, the DMA arbiter, the per-core tile
//! pipeline — emits typed [`Event`]s into a [`Probe`]. The probe type is a
//! *generic parameter* of the emitting component, so the dispatch is
//! monomorphized: with the default [`NullProbe`] every emission site
//! compiles to nothing (the `Probe::ENABLED` constant guards each one and
//! `record` is an empty inline function), and the hot path is bit- and
//! perf-identical to a build without instrumentation. With [`StatsProbe`]
//! the same sites aggregate counters, latency histograms, per-epoch series,
//! a cycle-exact per-core stall breakdown, and phase spans exportable as a
//! Chrome `chrome://tracing` timeline.
//!
//! The two halves of a simulation (the engine-side probe and the
//! memory-system-side probe) are merged with [`Probe::merge`] when the run
//! report is assembled, and surface as a [`StatsReport`].
//!
//! ```
//! use mnpu_probe::{Event, NullProbe, Probe, StatsProbe};
//!
//! fn hot_path<P: Probe>(probe: &mut P) {
//!     if P::ENABLED {
//!         probe.record(100, Event::TlbHit { core: 0 });
//!     }
//! }
//!
//! let mut off = NullProbe; // compiles to nothing
//! hot_path(&mut off);
//! let mut on = StatsProbe::default();
//! hot_path(&mut on);
//! assert_eq!(on.into_report().unwrap().cores[0].tlb_hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod lifecycle;
mod stats;

pub use hist::Histogram;
pub use lifecycle::{JobEvent, JobPhase, JobTimeline};
pub use stats::{
    CoreStats, DramContention, JobSpan, SchedStats, Span, StallBreakdown, StatsProbe, StatsReport,
};

/// A tile-pipeline phase, bounding one [`Event::PhaseBegin`] /
/// [`Event::PhaseEnd`] span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// DMA load of a tile's inputs into the scratchpad.
    Load,
    /// Systolic-array compute of one tile.
    Compute,
    /// DMA store of a tile's outputs back to DRAM.
    Store,
}

impl Phase {
    /// Stable lowercase name (used by the Chrome-trace exporter).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Compute => "compute",
            Phase::Store => "store",
        }
    }
}

/// What a core is doing at a sampling point, for the stall breakdown.
///
/// The engine classifies with a fixed priority — `Compute` beats
/// `WaitTranslation` beats `WaitLoad` beats `WaitStore` — so each cycle of
/// a core's execution lands in exactly one category and the categories sum
/// to the core's active cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoreState {
    /// Before the core's configured start cycle.
    Idle,
    /// The systolic array is busy.
    Compute,
    /// Stalled with at least one transaction parked on a page-table walk.
    WaitTranslation,
    /// Stalled on an in-flight tile load.
    WaitLoad,
    /// Stalled draining stores (including the cross-layer store barrier).
    WaitStore,
    /// The workload has finished.
    Finished,
}

/// A typed observability event. The `cycle` it occurred at is passed
/// separately to [`Probe::record`] (always in global DRAM-clock cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A transaction entered a DRAM channel queue; `queue_depth` is the
    /// occupancy after insertion (the scheduler's reorder-window pressure).
    DramIssue {
        /// Target channel.
        channel: usize,
        /// Queue occupancy including the new arrival.
        queue_depth: usize,
    },
    /// A DRAM command committed to an already-open row. `residency` is the
    /// cycles the transaction waited in the channel queue before its CAS.
    DramRowHit {
        /// Servicing channel.
        channel: usize,
        /// Requesting core.
        core: usize,
        /// Queue residency in DRAM cycles (arrival to CAS).
        residency: u64,
    },
    /// A DRAM command that had to activate a closed row first.
    DramRowMiss {
        /// Servicing channel.
        channel: usize,
        /// Requesting core.
        core: usize,
        /// Queue residency in DRAM cycles (arrival to CAS).
        residency: u64,
    },
    /// A DRAM command that had to precharge another core-open row first —
    /// the contention signature the paper's §4.2 analysis rests on.
    DramRowConflict {
        /// Servicing channel.
        channel: usize,
        /// Requesting core.
        core: usize,
        /// Queue residency in DRAM cycles (arrival to CAS).
        residency: u64,
    },
    /// An all-bank refresh blocked a channel for tRFC.
    DramRefresh {
        /// Refreshing channel.
        channel: usize,
    },
    /// A TLB lookup hit.
    TlbHit {
        /// Requesting core.
        core: usize,
    },
    /// A TLB lookup missed.
    TlbMiss {
        /// Requesting core.
        core: usize,
    },
    /// A TLB entry was evicted; `core` is the entry's *owner* (under a
    /// shared TLB the evictor may be a different core — TLB thrashing).
    TlbEvict {
        /// Core whose translation was evicted.
        core: usize,
    },
    /// A page-table walk acquired a walker and issued its first access.
    WalkStart {
        /// Requesting core.
        core: usize,
        /// Raw walk id, paired with the matching [`Event::WalkDone`].
        walk: u64,
    },
    /// A page-table walk completed and filled the TLB.
    WalkDone {
        /// Requesting core.
        core: usize,
        /// Raw walk id from the matching [`Event::WalkStart`].
        walk: u64,
    },
    /// A walk could not start because the walker pool was exhausted.
    WalkerStall {
        /// Requesting core.
        core: usize,
    },
    /// The DMA arbiter enqueued a transaction into the memory system.
    DmaGrant {
        /// Requesting core.
        core: usize,
    },
    /// The DMA arbiter bounced a transaction off a full DRAM queue.
    DmaRetry {
        /// Requesting core.
        core: usize,
    },
    /// A tile phase opened (load issued / compute started / store opened).
    PhaseBegin {
        /// Owning core.
        core: usize,
        /// Which phase.
        phase: Phase,
        /// Flattened tile index, pairing begin with end.
        id: u64,
    },
    /// A tile phase closed.
    PhaseEnd {
        /// Owning core.
        core: usize,
        /// Which phase.
        phase: Phase,
        /// Flattened tile index from the matching begin.
        id: u64,
    },
    /// A core transitioned into (or re-sampled) `state`; the engine emits
    /// one per core per event-loop iteration, so states are piecewise
    /// constant between samples and the integration is cycle-exact.
    CoreState {
        /// Sampled core.
        core: usize,
        /// Its classified state.
        state: CoreState,
    },
    /// A job entered the scheduler's FIFO queue (serve mode).
    JobArrive {
        /// Scheduler-assigned job id, unique within a scenario.
        job: u64,
        /// Queue occupancy including the new arrival.
        queue_depth: usize,
    },
    /// A queued job was bound to a core and started executing.
    JobDispatch {
        /// Job id from the matching [`Event::JobArrive`].
        job: u64,
        /// Core the job was bound to.
        core: usize,
        /// Queue occupancy after removal.
        queue_depth: usize,
    },
    /// A dispatched job's workload ran to completion.
    JobComplete {
        /// Job id from the matching [`Event::JobDispatch`].
        job: u64,
        /// Core the job ran on.
        core: usize,
    },
}

/// The observability sink. Emission sites are written as
///
/// ```ignore
/// if P::ENABLED {
///     probe.record(now, Event::TlbMiss { core });
/// }
/// ```
///
/// so a [`NullProbe`] build const-folds the whole block away — the
/// zero-cost gating contract the golden fixtures and the hot-path benchmark
/// pin down.
pub trait Probe: std::fmt::Debug + Clone + Send + Default + 'static {
    /// `false` only for [`NullProbe`]; guards every emission site.
    const ENABLED: bool;

    /// Record one event at `cycle` (global DRAM-clock cycles).
    fn record(&mut self, cycle: u64, event: Event);

    /// Fold another probe of the same type into this one (the engine-side
    /// and memory-side halves of a run are merged at report time).
    fn merge(&mut self, other: Self);

    /// Finalize into a [`StatsReport`]; `None` for probes that aggregate
    /// nothing.
    fn into_report(self) -> Option<StatsReport>;

    /// Serialize all accumulated probe state for a checkpoint. A probe
    /// that aggregates nothing writes nothing.
    fn save_state(&self, w: &mut mnpu_snapshot::Writer);

    /// Restore state saved by [`Probe::save_state`] into a freshly built
    /// probe of the same type.
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is malformed.
    fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError>;
}

/// Replay a batch of synthesized per-command events into `probe`, in index
/// order: `f(i)` produces the `(cycle, event)` pair the uninstrumented
/// per-command path would have emitted for the batch's `i`-th command.
///
/// Batched fast paths (the DRAM steady-state fast-forward) retire many
/// commands in one step; this helper reconstructs the identical event
/// stream — same events, same cycles, same order — so instrumented runs
/// cannot tell the fast path apart from the slow one. Under [`NullProbe`]
/// (`ENABLED == false`) the whole call, closure included, const-folds away,
/// preserving the zero-cost contract.
#[inline]
pub fn replay_batch<P: Probe>(probe: &mut P, n: usize, mut f: impl FnMut(usize) -> (u64, Event)) {
    if P::ENABLED {
        for i in 0..n {
            let (cycle, event) = f(i);
            probe.record(cycle, event);
        }
    }
}

/// The default probe: records nothing, costs nothing. `ENABLED == false`
/// lets the compiler eliminate every guarded emission site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _cycle: u64, _event: Event) {}

    #[inline(always)]
    fn merge(&mut self, _other: Self) {}

    fn into_report(self) -> Option<StatsReport> {
        None
    }

    #[inline(always)]
    fn save_state(&self, _w: &mut mnpu_snapshot::Writer) {}

    #[inline(always)]
    fn load_state(
        &mut self,
        _r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled_and_empty() {
        const { assert!(!NullProbe::ENABLED) }
        let mut p = NullProbe;
        p.record(0, Event::TlbHit { core: 0 });
        p.merge(NullProbe);
        assert_eq!(p.into_report(), None);
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
    }

    #[test]
    fn stats_probe_is_enabled() {
        const { assert!(StatsProbe::ENABLED) }
    }
}
