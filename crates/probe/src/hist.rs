//! Power-of-two-bucket latency histograms.

/// A log2-bucket histogram of `u64` samples (latencies, depths).
///
/// Bucket *i* holds samples whose bit length is *i*: bucket 0 is exactly
/// `{0}`, bucket 1 is `{1}`, bucket 2 is `{2, 3}`, bucket 3 is `{4..=7}`,
/// and so on. Recording is O(1) and the memory footprint is bounded by 65
/// counters, so the probe can histogram every DRAM transaction and
/// page-table walk of a run without touching the allocator in steady state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Histogram {
    /// Bucket index of `v` (its bit length).
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = Histogram::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample (0 when empty). Exact — tracked per sample, not
    /// reconstructed from the log2 buckets — so analytical lower bounds
    /// (e.g. a walk can never beat `levels * (CL + burst)`) can be checked
    /// without slack.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Raw bucket counters; index = bit length of the samples it holds.
    /// Trailing empty buckets are not materialized.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive `(lo, hi)` sample range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            return (0, 0);
        }
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }

    /// Serialize the histogram's full state.
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.seq(&self.buckets, |w, &b| w.u64(b));
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.max);
        w.u64(self.min);
    }

    /// Restore a histogram saved by [`Histogram::save_state`].
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is truncated.
    pub fn load_state(
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<Histogram, mnpu_snapshot::SnapError> {
        Ok(Histogram {
            buckets: r.seq(|r| r.u64())?,
            count: r.u64()?,
            sum: r.u64()?,
            max: r.u64()?,
            min: r.u64()?,
        })
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.min = match (self.count, other.count) {
            (_, 0) => self.min,
            (0, _) => other.min,
            _ => self.min.min(other.min),
        };
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_partition_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), &[1, 1, 2, 2, 1, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.min(), 0);
        assert_eq!(h.sum(), 1049);
    }

    #[test]
    fn min_tracks_smallest_sample_exactly() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), 0, "empty histogram reports 0");
        h.record(37);
        assert_eq!(h.min(), 37);
        h.record(5);
        h.record(900);
        assert_eq!(h.min(), 5);
    }

    #[test]
    fn bounds_cover_each_bucket() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(5);
        b.record(500);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 505);
        assert_eq!(a.max(), 500);
        assert_eq!(a.min(), 0);

        let empty = Histogram::default();
        let mut c = Histogram::default();
        c.record(9);
        c.merge(&empty);
        assert_eq!(c.min(), 9, "merging an empty histogram must not clobber min");
        let mut d = Histogram::default();
        d.merge(&c);
        assert_eq!(d.min(), 9, "merging into an empty histogram adopts the other min");
    }

    proptest! {
        #[test]
        fn prop_every_sample_lands_in_its_bounds(vs in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
            let mut h = Histogram::default();
            for &v in &vs {
                h.record(v);
            }
            prop_assert_eq!(h.count(), vs.len() as u64);
            prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), vs.len() as u64);
            for &v in &vs {
                let i = (64 - v.leading_zeros()) as usize;
                let (lo, hi) = Histogram::bucket_bounds(i);
                prop_assert!(v >= lo && v <= hi);
            }
        }
    }
}
