//! Service-level job lifecycle tracking.
//!
//! The in-simulation [`Event`](crate::Event) stream records what happens
//! *inside* a run, in simulated cycles. A long-lived service additionally
//! needs the story *around* each run, in wall-clock time: when the job was
//! admitted, dispatched, checkpointed, resumed, and how it ended. A
//! [`JobTimeline`] accumulates those [`JobEvent`]s per job; the service
//! returns it verbatim from its status endpoint so a client (or a
//! conformance test) can audit the exact phase sequence a job went
//! through.

use std::fmt;

/// One step in a service job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPhase {
    /// Accepted by admission control and queued.
    Submitted,
    /// Handed to a worker; the simulation is running.
    Dispatched,
    /// Snapshotted mid-run (budget, cancel or drain) — resumable.
    Checkpointed,
    /// Restored from a checkpoint and running again.
    Resumed,
    /// Ran to completion; the report is available.
    Completed,
    /// Stopped by a cancellation request.
    Cancelled,
    /// Stopped at its wall-clock budget.
    OverBudget,
    /// Died with an execution error.
    Failed,
    /// Checkpointed by a daemon drain instead of finishing.
    Suspended,
}

impl JobPhase {
    /// Stable lowercase name (used in status JSON and metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Submitted => "submitted",
            JobPhase::Dispatched => "dispatched",
            JobPhase::Checkpointed => "checkpointed",
            JobPhase::Resumed => "resumed",
            JobPhase::Completed => "completed",
            JobPhase::Cancelled => "cancelled",
            JobPhase::OverBudget => "over_budget",
            JobPhase::Failed => "failed",
            JobPhase::Suspended => "suspended",
        }
    }

    /// `true` when the phase ends the job's current incarnation (it may
    /// still be resumable: `Cancelled`, `OverBudget` and `Suspended` jobs
    /// with a checkpoint can come back as `Resumed`).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Completed
                | JobPhase::Cancelled
                | JobPhase::OverBudget
                | JobPhase::Failed
                | JobPhase::Suspended
        )
    }
}

impl fmt::Display for JobPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded lifecycle step: which phase, and when (milliseconds since
/// the service's own epoch — wall-clock, not simulated cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEvent {
    /// Milliseconds since the recording service started.
    pub at_ms: u64,
    /// The phase entered.
    pub phase: JobPhase,
}

/// An append-only record of one job's lifecycle.
///
/// ```
/// use mnpu_probe::{JobPhase, JobTimeline};
///
/// let mut t = JobTimeline::new();
/// t.record(0, JobPhase::Submitted);
/// t.record(3, JobPhase::Dispatched);
/// t.record(9, JobPhase::Completed);
/// assert_eq!(t.current(), Some(JobPhase::Completed));
/// assert!(t.to_json().contains("\"dispatched\""));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobTimeline {
    events: Vec<JobEvent>,
}

impl JobTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        JobTimeline::default()
    }

    /// Append a phase transition.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` precedes the previous event — timelines are
    /// recorded by a single service clock and never reorder.
    pub fn record(&mut self, at_ms: u64, phase: JobPhase) {
        if let Some(last) = self.events.last() {
            assert!(at_ms >= last.at_ms, "timeline must be monotone: {} < {}", at_ms, last.at_ms);
        }
        self.events.push(JobEvent { at_ms, phase });
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[JobEvent] {
        &self.events
    }

    /// The most recently entered phase.
    pub fn current(&self) -> Option<JobPhase> {
        self.events.last().map(|e| e.phase)
    }

    /// How many times `phase` was entered.
    pub fn count(&self, phase: JobPhase) -> usize {
        self.events.iter().filter(|e| e.phase == phase).count()
    }

    /// The timeline as a JSON array of `{"at_ms":..,"phase":".."}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_ms\":{},\"phase\":\"{}\"}}", e.at_ms, e.phase.as_str()));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_records_in_order() {
        let mut t = JobTimeline::new();
        assert_eq!(t.current(), None);
        t.record(0, JobPhase::Submitted);
        t.record(2, JobPhase::Dispatched);
        t.record(2, JobPhase::Checkpointed);
        t.record(5, JobPhase::Resumed);
        t.record(9, JobPhase::Completed);
        assert_eq!(t.events().len(), 5);
        assert_eq!(t.current(), Some(JobPhase::Completed));
        assert_eq!(t.count(JobPhase::Checkpointed), 1);
        assert_eq!(t.count(JobPhase::Failed), 0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn timeline_rejects_time_travel() {
        let mut t = JobTimeline::new();
        t.record(5, JobPhase::Submitted);
        t.record(4, JobPhase::Dispatched);
    }

    #[test]
    fn terminal_phases() {
        assert!(!JobPhase::Submitted.is_terminal());
        assert!(!JobPhase::Dispatched.is_terminal());
        assert!(!JobPhase::Resumed.is_terminal());
        assert!(!JobPhase::Checkpointed.is_terminal());
        assert!(JobPhase::Completed.is_terminal());
        assert!(JobPhase::Suspended.is_terminal());
        assert!(JobPhase::Cancelled.is_terminal());
    }

    #[test]
    fn json_shape() {
        let mut t = JobTimeline::new();
        t.record(1, JobPhase::Submitted);
        t.record(4, JobPhase::OverBudget);
        assert_eq!(
            t.to_json(),
            "[{\"at_ms\":1,\"phase\":\"submitted\"},{\"at_ms\":4,\"phase\":\"over_budget\"}]"
        );
        assert_eq!(JobTimeline::new().to_json(), "[]");
    }
}
