//! Experiment harness regenerating every figure of the mNPUsim paper.
//!
//! Each `figNN_*` bench target (plain-harness binaries under `benches/`)
//! calls one function from [`figures`] and prints the same rows/series the
//! paper plots. The [`harness`] module provides the shared machinery:
//! the workload zoo at the active scale, Ideal baselines, mix enumeration
//! and a persistent run cache (`target/mnpu_run_cache.tsv`) so that figures
//! sharing sweeps (e.g. Figs. 4 and 6 both need the 36-mix dual sweep) don't
//! re-simulate.
//!
//! Environment knobs (read once per process):
//!
//! * `MNPU_FULL=1` — run the *full* quad-core (330 mixes) and mapping
//!   (6435 multisets) sweeps instead of the deterministic samples;
//! * `MNPU_QUAD_STRIDE=k` — sample every *k*-th quad mix (default 10);
//! * `MNPU_NO_CACHE=1` — ignore and don't write the run cache;
//! * `MNPU_JOBS=n` — worker threads for the [`SweepExecutor`] fan-out
//!   (default: available parallelism; `1` = serial);
//! * `MNPU_NO_PREFIX_SHARE=1` — disable warm-start prefix sharing (the
//!   [`prefix`] module), forcing every sweep point to simulate from
//!   cycle 0. Results are bit-exact either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod figures;
pub mod harness;
pub mod prefix;
pub mod serve_exec;
pub mod sweeps;

pub use executor::SweepExecutor;
pub use harness::Harness;
pub use prefix::{plan_units, prefix_share_enabled, SweepUnit};
pub use serve_exec::ServeExecutor;
pub use sweeps::{run_counts, run_counts_observed, run_counts_with, SweepCounts, SweepRequest};
