//! Warm-start prefix sharing for sweep execution.
//!
//! The fig04-style sweeps run the *same* workload mix under several
//! sharing levels that differ **only** in MMU organization (`+D`, `+DW`,
//! `+DWT` all share DRAM; they disagree on walker and TLB sharing). The
//! engine's shadow-MMU machinery ([`mnpu_engine::Simulation::add_shadow_config`])
//! exploits that: one *representative* simulation runs the group while
//! per-variant shadow MMUs verify, cycle by cycle, that each variant would
//! have behaved identically so far. Each variant is then finished from its
//! last in-lockstep checkpoint instead of from cycle 0 — the shared prefix
//! is simulated once.
//!
//! This module decides *which* requests may share a prefix. The grouping
//! is purely an execution strategy: results are bit-exact either way (the
//! engine forks only checkpoints proven equivalent), which
//! `grouped_reports_match_solo_runs` fences. Set `MNPU_NO_PREFIX_SHARE=1`
//! to force every request down the independent path.

use mnpu_engine::{MemoryModel, ProbeMode, SharingLevel, SystemConfig};

/// One executable unit of a sweep plan: indices into the request list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepUnit {
    /// An independent simulation.
    Single(usize),
    /// Requests sharing one simulated prefix; the first is the
    /// representative, the rest are finished from forked checkpoints.
    Group(Vec<usize>),
}

/// Whether prefix sharing is enabled (`MNPU_NO_PREFIX_SHARE=1` disables).
pub fn prefix_share_enabled() -> bool {
    std::env::var_os("MNPU_NO_PREFIX_SHARE").is_none()
}

/// Whether `cfg` may participate in a prefix-sharing group at all.
///
/// The gate is conservative: the sharing level must be one where DRAM is
/// shared and only MMU organization varies (`+D`, `+DW`, `+DWT`), and the
/// run must not carry per-run observable state the shadow machinery does
/// not mirror (stats probe, request log, trace window) or a non-default
/// memory model. Everything else falls back to independent execution —
/// which is always correct, just slower.
pub fn eligible(cfg: &SystemConfig) -> bool {
    matches!(cfg.sharing, SharingLevel::PlusD | SharingLevel::PlusDw | SharingLevel::PlusDwt)
        && cfg.translation
        && cfg.probe == ProbeMode::None
        && !cfg.request_log
        && cfg.trace_window.is_none()
        && cfg.memory == MemoryModel::Timing
}

/// The key under which requests may share a prefix: the workload mix plus
/// the configuration with its sharing level neutralized. Two eligible
/// requests with equal keys are identical *except* for MMU organization.
pub fn divergence_key(cfg: &SystemConfig, workloads: &[usize]) -> u64 {
    let mut neutral = cfg.clone();
    neutral.sharing = SharingLevel::PlusD;
    crate::harness::fnv1a(&format!("{neutral:?}|{workloads:?}"))
}

/// Partition `requests` into execution units, preserving first-occurrence
/// order. Ineligible requests (or all of them, when prefix sharing is
/// disabled) become [`SweepUnit::Single`]; eligible requests with the same
/// [`divergence_key`] coalesce into one [`SweepUnit::Group`]. A group of
/// one collapses back to a single.
pub fn plan_units<'a>(
    requests: impl IntoIterator<Item = (&'a SystemConfig, &'a [usize])>,
) -> Vec<SweepUnit> {
    let share = prefix_share_enabled();
    let mut units: Vec<SweepUnit> = Vec::new();
    let mut groups: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, (cfg, ws)) in requests.into_iter().enumerate() {
        if !share || !eligible(cfg) {
            units.push(SweepUnit::Single(i));
            continue;
        }
        match groups.entry(divergence_key(cfg, ws)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let SweepUnit::Group(members) = &mut units[*e.get()] else {
                    unreachable!("group table only points at groups");
                };
                members.push(i);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(units.len());
                units.push(SweepUnit::Group(vec![i]));
            }
        }
    }
    for u in &mut units {
        if let SweepUnit::Group(members) = u {
            if members.len() == 1 {
                *u = SweepUnit::Single(members[0]);
            }
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Harness;

    fn dual(s: SharingLevel) -> SystemConfig {
        SystemConfig::bench(2, s)
    }

    #[test]
    fn static_and_decorated_configs_are_ineligible() {
        assert!(!eligible(&dual(SharingLevel::Static)));
        assert!(!eligible(&dual(SharingLevel::Ideal)));
        assert!(eligible(&dual(SharingLevel::PlusD)));
        assert!(eligible(&dual(SharingLevel::PlusDwt)));
        assert!(!eligible(&dual(SharingLevel::PlusD).without_translation()));
        assert!(!eligible(&dual(SharingLevel::PlusD).with_ideal_memory(60)));
        let mut logged = dual(SharingLevel::PlusD);
        logged.request_log = true;
        assert!(!eligible(&logged));
        let mut probed = dual(SharingLevel::PlusD);
        probed.probe = ProbeMode::Stats;
        assert!(!eligible(&probed));
    }

    #[test]
    fn keys_group_by_mix_and_ignore_sharing() {
        let a = divergence_key(&dual(SharingLevel::PlusD), &[6, 6]);
        assert_eq!(a, divergence_key(&dual(SharingLevel::PlusDwt), &[6, 6]));
        assert_ne!(a, divergence_key(&dual(SharingLevel::PlusD), &[6, 7]));
    }

    #[test]
    fn planning_coalesces_the_co_run_levels() {
        let reqs: Vec<(SystemConfig, Vec<usize>)> = vec![
            (dual(SharingLevel::Static), vec![6, 6]),
            (dual(SharingLevel::PlusD), vec![6, 6]),
            (dual(SharingLevel::PlusDw), vec![6, 6]),
            (dual(SharingLevel::PlusDwt), vec![6, 6]),
            (dual(SharingLevel::PlusD), vec![6, 7]),
        ];
        let units = plan_units(reqs.iter().map(|(c, w)| (c, w.as_slice())));
        assert_eq!(
            units,
            vec![SweepUnit::Single(0), SweepUnit::Group(vec![1, 2, 3]), SweepUnit::Single(4),]
        );
    }

    #[test]
    fn grouped_reports_match_solo_runs() {
        std::env::set_var("MNPU_NO_CACHE", "1");
        let h = Harness::new();
        let cfgs: Vec<SystemConfig> =
            [SharingLevel::PlusD, SharingLevel::PlusDw, SharingLevel::PlusDwt]
                .map(dual)
                .into_iter()
                .collect();
        let ws = [6usize, 6];
        let shared = h.run_reports_shared(&cfgs, &ws);
        for (cfg, report) in cfgs.iter().zip(&shared) {
            let solo = h.run_report(cfg, &ws);
            assert_eq!(
                report.to_json(),
                solo.to_json(),
                "prefix-shared run diverged from the independent run under {:?}",
                cfg.sharing
            );
        }
    }
}
