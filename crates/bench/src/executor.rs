//! Parallel sweep execution over `std::thread` workers.
//!
//! The figure sweeps are embarrassingly parallel — hundreds of independent
//! simulations whose results meet only in the run cache. [`SweepExecutor`]
//! fans a request list out across worker threads (each worker clones the
//! [`Harness`], sharing its mutex-guarded caches) and returns results in
//! request order. Every simulation is single-threaded and deterministic,
//! so the results are byte-identical to the serial path regardless of the
//! worker count or scheduling.

use crate::harness::Harness;
use crate::prefix::{plan_units, SweepUnit};
use mnpu_engine::SystemConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One sweep request: run `workloads[i]` on core *i* of the configuration.
pub type MixRequest = (SystemConfig, Vec<usize>);

/// Fans sweep requests out across worker threads.
///
/// The worker count comes from the `MNPU_JOBS` environment variable when
/// set (minimum 1), otherwise from [`std::thread::available_parallelism`].
/// `MNPU_JOBS=1` degenerates to the plain serial loop.
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    jobs: usize,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor::new()
    }
}

impl SweepExecutor {
    /// An executor sized by `MNPU_JOBS`, defaulting to the machine's
    /// available parallelism.
    pub fn new() -> Self {
        let jobs = std::env::var("MNPU_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
        SweepExecutor::with_jobs(jobs)
    }

    /// An executor with an explicit worker count (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        SweepExecutor { jobs: jobs.max(1) }
    }

    /// The worker count this executor fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every request (deduplicated, cache hits skipped), then return
    /// per-core cycle counts in request order. Results are memoized in the
    /// harness cache exactly as [`Harness::run_mix`] would.
    ///
    /// Uncached requests that differ only in MMU organization are coalesced
    /// into warm-start prefix groups (see [`crate::prefix`]) — each group
    /// is one unit of worker parallelism, its members simulated from one
    /// shared prefix. `MNPU_NO_PREFIX_SHARE=1` restores the one-request-
    /// per-unit plan; results are byte-identical either way.
    pub fn run_mixes(&self, h: &Harness, requests: &[MixRequest]) -> Vec<Vec<u64>> {
        // Dedup by cache key and drop already-memoized runs so workers only
        // see fresh work.
        let mut seen = std::collections::HashSet::new();
        let todo: Vec<&MixRequest> = requests
            .iter()
            .filter(|(cfg, ws)| seen.insert(Harness::key(cfg, ws)) && h.cached(cfg, ws).is_none())
            .collect();
        let units = plan_units(todo.iter().map(|(cfg, ws)| (cfg, ws.as_slice())));

        fn run_unit(h: &Harness, todo: &[&MixRequest], unit: &SweepUnit) {
            match unit {
                SweepUnit::Single(i) => {
                    let (cfg, ws) = todo[*i];
                    h.run_mix(cfg, ws);
                }
                SweepUnit::Group(members) => {
                    let cfgs: Vec<SystemConfig> =
                        members.iter().map(|&i| todo[i].0.clone()).collect();
                    h.run_mix_group(&cfgs, &todo[members[0]].1);
                }
            }
        }

        let workers = self.jobs.min(units.len());
        if workers <= 1 {
            for unit in &units {
                run_unit(h, &todo, unit);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let worker = h.clone();
                    let next = &next;
                    let (todo, units) = (&todo, &units);
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = units.get(i) else { break };
                        run_unit(&worker, todo, unit);
                    });
                }
            });
        }

        // Everything is cached now; assemble results in request order.
        requests.iter().map(|(cfg, ws)| h.run_mix(cfg, ws)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_engine::SharingLevel;

    #[test]
    fn executor_clamps_to_one_job() {
        assert_eq!(SweepExecutor::with_jobs(0).jobs(), 1);
        assert!(SweepExecutor::new().jobs() >= 1);
    }

    #[test]
    fn run_mixes_preserves_request_order_and_dedups() {
        std::env::set_var("MNPU_NO_CACHE", "1");
        let h = Harness::new();
        let cfg = Harness::dual(SharingLevel::Static);
        let reqs: Vec<MixRequest> = vec![
            (cfg.clone(), vec![6, 6]),
            (cfg.clone(), vec![6, 7]),
            (cfg.clone(), vec![6, 6]), // duplicate
        ];
        let out = SweepExecutor::with_jobs(2).run_mixes(&h, &reqs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2], "duplicate requests share one run");
        assert_eq!(out[0], h.run_mix(&cfg, &[6, 6]));
        assert_eq!(out[1], h.run_mix(&cfg, &[6, 7]));
    }
}
