//! Wall-clock throughput benchmark for the serve-mode scheduling layer.
//!
//! Runs a list of scheduling scenarios through [`mnpu_bench::ServeExecutor`]
//! (respecting `MNPU_JOBS`), measuring end-to-end wall seconds, served
//! jobs per wall second and simulated makespan cycles, and appends the
//! result to `BENCH_serve.json` at the repository root — the scheduling
//! layer's perf trajectory across PRs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mnpu-bench --bin mnpu_serve [-- --tiny] [-- --scenario PATH]
//! ```
//!
//! * `--tiny` — a 2-scenario smoke workload (CI: catches panics or
//!   pathological slowdowns in the scheduling path in seconds);
//! * `--scenario PATH` — load one scenario file
//!   ([`mnpu_config::load_scenario`] format) instead of the built-in list
//!   and print its per-job records plus a completion-latency CDF;
//! * `--label NAME` — label recorded in the JSON entry (default `current`;
//!   `MNPU_BENCH_LABEL` works too);
//! * `--check PATH` — compare this run's `jobs_per_sec` against the newest
//!   same-mode `"baseline"`-labeled entry in `PATH` and exit non-zero
//!   below `MNPU_BENCH_TOLERANCE` (default 0.95) of it;
//! * `--repeat N` — serve the list `N` times, each on a fresh executor,
//!   and keep the fastest (defaults to 5 under `--tiny`, 1 otherwise).
//!
//! `MNPU_BENCH_OUT` overrides the output path.

use mnpu_bench::ServeExecutor;
use mnpu_config::{load_scenario, parse_scenario, ScenarioSpec};
use mnpu_sched::ServeReport;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct ServeSweep {
    scenarios: usize,
    jobs: usize,
    wall_seconds: f64,
    simulated_cycles: u64,
    reports: Vec<Arc<ServeReport>>,
}

/// Serve every scenario on a fresh executor (no memo hits — this is a
/// throughput benchmark, every run must simulate).
fn run_sweep(specs: &[ScenarioSpec]) -> ServeSweep {
    let t0 = Instant::now();
    let reports = ServeExecutor::new().run_scenarios(specs);
    let wall_seconds = t0.elapsed().as_secs_f64();
    ServeSweep {
        scenarios: specs.len(),
        jobs: reports.iter().map(|r| r.jobs.len()).sum(),
        wall_seconds,
        simulated_cycles: reports.iter().map(|r| r.makespan).sum(),
        reports,
    }
}

fn parse_builtin(name: &str, text: &str) -> ScenarioSpec {
    parse_scenario(name, text).expect("built-in scenario parses")
}

/// The standard list: queueing pressure across core counts, policies and
/// arrival patterns, on the cheap end of the zoo so the sweep stays in the
/// seconds range.
fn serve_scenarios() -> Vec<ScenarioSpec> {
    vec![
        parse_builtin(
            "dual-firstfree",
            "cores = 2\npattern = fixed:100000\n\
             job = ncf\njob = dlrm\njob = ncf\njob = dlrm\njob = ncf\njob = dlrm\n",
        ),
        parse_builtin(
            "dual-bursty",
            "cores = 2\npattern = bursty:2:150000\nseed = 7\npolicy = round_robin\n\
             job = ncf\njob = ncf\njob = dlrm\njob = dlrm\njob = ncf\njob = ncf\n",
        ),
        parse_builtin(
            "quad-static",
            "cores = 4\nsharing = Static\npattern = fixed:50000\n\
             job = ncf\njob = dlrm\njob = ncf\njob = dlrm\n\
             job = ncf\njob = dlrm\njob = ncf\njob = dlrm\n",
        ),
    ]
}

/// CI smoke: two fast scenarios — seconds, not minutes.
fn tiny_scenarios() -> Vec<ScenarioSpec> {
    vec![
        parse_builtin("tiny-queue", "cores = 1\npattern = fixed:1000\njob = ncf\njob = ncf\n"),
        parse_builtin(
            "tiny-dual",
            "cores = 2\npattern = fixed:50000\npolicy = round_robin\n\
             job = ncf\njob = dlrm\njob = ncf\n",
        ),
    ]
}

/// Append `entry` to the JSON array in `path` (created when missing). The
/// file stays a plain JSON array of objects, one entry per line.
fn append_entry(path: &PathBuf, entry: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(text) => {
            let inner = text.trim().trim_start_matches('[').trim_end_matches(']').trim();
            if inner.is_empty() {
                format!("[\n{entry}\n]\n")
            } else {
                format!("[\n{inner},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, body)
}

/// Newest `"label":"baseline"` entry of `mode` in the bench-history file:
/// its `jobs_per_sec`. Entries are one object per line, written by this
/// binary, so a line-wise scan is an honest parser for them.
fn baseline_jobs_per_sec(path: &PathBuf, mode: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let mode_tag = format!("\"mode\":\"{mode}\"");
    text.lines()
        .filter(|l| l.contains("\"label\":\"baseline\"") && l.contains(&mode_tag))
        .filter_map(|l| {
            let rest = l.split("\"jobs_per_sec\":").nth(1)?;
            let num: String =
                rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
            num.parse::<f64>().ok()
        })
        .next_back()
}

/// Print the scenario's per-job records and its completion-latency CDF —
/// the raw material for the latency-CDF figure in EXPERIMENTS.md.
fn print_scenario_report(report: &ServeReport) {
    println!(
        "{:>4} {:>10} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "job", "workload", "core", "arrival", "queueing", "service", "latency"
    );
    for j in &report.jobs {
        println!(
            "{:>4} {:>10} {:>6} {:>12} {:>12} {:>12} {:>12}",
            j.job,
            j.workload,
            j.core,
            j.arrival,
            j.queueing(),
            j.service(),
            j.latency()
        );
    }
    let mut latencies: Vec<u64> = report.jobs.iter().map(|j| j.latency()).collect();
    latencies.sort_unstable();
    println!("latency CDF (cycles, fraction):");
    for (i, l) in latencies.iter().enumerate() {
        println!("cdf {l} {:.4}", (i + 1) as f64 / latencies.len() as f64);
    }
    println!(
        "latency p50 {:.0} p95 {:.0} p99 {:.0} mean {:.1} max {:.0}",
        report.latency.p50,
        report.latency.p95,
        report.latency.p99,
        report.latency.mean,
        report.latency.max
    );
    println!(
        "queueing p50 {:.0} max {:.0} | service p50 {:.0} max {:.0}",
        report.queueing.p50, report.queueing.max, report.service.p50, report.service.max
    );
    println!(
        "makespan {} cycles, throughput {:.3} jobs/Mcycle",
        report.makespan, report.throughput_per_mcycle
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let arg_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let label = arg_value("--label")
        .or_else(|| std::env::var("MNPU_BENCH_LABEL").ok())
        .unwrap_or_else(|| "current".to_string());
    let scenario_path = arg_value("--scenario").map(PathBuf::from);
    let check_path = arg_value("--check").map(PathBuf::from);
    let repeat = arg_value("--repeat")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if tiny { 5 } else { 1 })
        .max(1);

    // The throughput benchmark must always measure real simulations (the
    // sweep run cache is not used by serve mode, but traces are regenerated
    // per run either way; a fresh executor per repeat defeats the memo).
    std::env::set_var("MNPU_NO_CACHE", "1");

    let (mode, specs) = if let Some(path) = &scenario_path {
        let spec = match load_scenario(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to load {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        ("scenario", vec![spec])
    } else if tiny {
        ("tiny", tiny_scenarios())
    } else {
        ("serve", serve_scenarios())
    };

    let mut r = run_sweep(&specs);
    for _ in 1..repeat {
        let again = run_sweep(&specs);
        if again.wall_seconds < r.wall_seconds {
            r = again;
        }
    }

    if scenario_path.is_some() {
        print_scenario_report(&r.reports[0]);
    }

    let jobs_per_sec = r.jobs as f64 / r.wall_seconds;
    let entry = format!(
        "{{\"label\":\"{label}\",\"mode\":\"{mode}\",\"scenarios\":{},\"jobs\":{},\
         \"sweep_seconds\":{:.3},\"simulated_cycles\":{},\"jobs_per_sec\":{:.2}}}",
        r.scenarios, r.jobs, r.wall_seconds, r.simulated_cycles, jobs_per_sec
    );
    println!("{entry}");

    let out = std::env::var("MNPU_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|_| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
    });
    match append_entry(&out, &entry) {
        Ok(()) => eprintln!("appended to {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    if let Some(path) = &check_path {
        let tolerance = std::env::var("MNPU_BENCH_TOLERANCE")
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .unwrap_or(0.95);
        match baseline_jobs_per_sec(path, mode) {
            Some(base) => {
                let floor = base * tolerance;
                if jobs_per_sec < floor {
                    eprintln!(
                        "PERF REGRESSION: {jobs_per_sec:.2} jobs/s < {floor:.2} \
                         ({tolerance:.2} x baseline {base:.2}, mode {mode})"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "perf check ok: {jobs_per_sec:.2} jobs/s >= {floor:.2} \
                     ({tolerance:.2} x baseline {base:.2}, mode {mode})"
                );
            }
            None => {
                eprintln!(
                    "no \"baseline\"-labeled {mode} entry in {} — cannot check",
                    path.display()
                );
                std::process::exit(2);
            }
        }
    }
}
