//! Generate a complete markdown reproduction report: runs every figure of
//! the paper (reusing the persistent run cache) and writes the tables to
//! one file.
//!
//! ```text
//! cargo run --release -p mnpu-bench --bin mnpu_report [output.md]
//! ```

use mnpu_bench::figures::{bandwidth, mapping, sharing, translation};
use mnpu_bench::Harness;
use std::fmt::Write as _;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "target/mnpu_report.md".into());
    let mut h = Harness::new();
    let mut md = String::from("# mNPUsim-rs reproduction report\n\n");
    let _ = writeln!(
        md,
        "Quad stride: {}, full sweeps: {}\n",
        Harness::quad_stride(),
        Harness::full_sweeps()
    );

    // Fig 2b.
    let b = bandwidth::fig02_burstiness();
    let _ = writeln!(md, "## Fig. 2b — NCF burstiness\n");
    let _ = writeln!(
        md,
        "peak {:.3} req/cycle, mean {:.3}, ratio {:.1}x\n",
        b.peak,
        b.mean,
        b.peak / b.mean.max(1e-12)
    );

    // Figs 4/6.
    for (title, sweep) in [
        ("Fig. 4 — dual-core performance", sharing::fig04_dual_performance(&mut h)),
        ("Fig. 6 — dual-core fairness", sharing::fig06_dual_fairness(&mut h)),
    ] {
        let _ = writeln!(md, "## {title}\n");
        let _ = writeln!(md, "| mix | Static | +D | +DW | +DWT |");
        let _ = writeln!(md, "|-----|-------|----|-----|------|");
        for (mix, v) in &sweep.mixes {
            let _ =
                writeln!(md, "| {mix} | {:.3} | {:.3} | {:.3} | {:.3} |", v[0], v[1], v[2], v[3]);
        }
        let o = sweep.overall;
        let _ = writeln!(
            md,
            "| **geomean** | {:.3} | {:.3} | {:.3} | {:.3} |\n",
            o[0], o[1], o[2], o[3]
        );
    }

    // Figs 5/7 (quantiles).
    for (title, sweep) in [
        ("Fig. 5 — quad-core performance CDF", sharing::fig05_quad_performance_cdf(&mut h)),
        ("Fig. 7 — quad-core fairness CDF", sharing::fig07_quad_fairness_cdf(&mut h)),
    ] {
        let _ = writeln!(md, "## {title}\n");
        let _ = writeln!(md, "({} of {} mixes)\n", sweep.sampled, sweep.total);
        let _ = writeln!(md, "| quantile | Static | +D | +DW | +DWT |");
        let _ = writeln!(md, "|----------|-------|----|-----|------|");
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let _ = writeln!(
                md,
                "| {q:.2} | {:.3} | {:.3} | {:.3} | {:.3} |",
                sweep.cdfs[0].quantile(q),
                sweep.cdfs[1].quantile(q),
                sweep.cdfs[2].quantile(q),
                sweep.cdfs[3].quantile(q)
            );
        }
        let _ = writeln!(md);
    }

    // Fig 8.
    let s = sharing::fig08_sensitivity(&mut h);
    let _ = writeln!(md, "## Fig. 8 — contention sensitivity (+DWT)\n");
    let _ = writeln!(md, "| workload | min | median | max | range |");
    let _ = writeln!(md, "|----------|-----|--------|-----|-------|");
    for (w, b) in &s.per_workload {
        let _ = writeln!(
            md,
            "| {w} | {:.3} | {:.3} | {:.3} | {:.3} |",
            b.min,
            b.median,
            b.max,
            b.range()
        );
    }
    let _ = writeln!(md);

    // Figs 9/10.
    for (title, sweep) in [
        (
            "Fig. 9 — bandwidth partitioning, performance",
            bandwidth::fig09_bw_partition_performance(&mut h),
        ),
        (
            "Fig. 10 — bandwidth partitioning, fairness",
            bandwidth::fig10_bw_partition_fairness(&mut h),
        ),
    ] {
        let _ = writeln!(md, "## {title}\n");
        let _ = writeln!(md, "| {} |", bandwidth::BW_LABELS.join(" | "));
        let _ = writeln!(md, "|{}|", vec!["----"; bandwidth::BW_LABELS.len()].join("|"));
        let row: Vec<String> = sweep.overall.iter().map(|v| format!("{v:.3}")).collect();
        let _ = writeln!(md, "| {} |\n", row.join(" | "));
    }

    // Fig 11.
    let bw = bandwidth::fig11_bandwidth_sweep(&mut h);
    let _ = writeln!(md, "## Fig. 11 — bandwidth sweep (speedup vs {} GB/s)\n", bw.channels[0] * 8);
    let hdr: Vec<String> = bw.channels.iter().map(|c| format!("{} GB/s", c * 8)).collect();
    let _ = writeln!(md, "| workload | {} |", hdr.join(" | "));
    let _ = writeln!(md, "|----------|{}|", vec!["----"; bw.channels.len()].join("|"));
    for (w, series) in &bw.series {
        let row: Vec<String> = series.iter().map(|v| format!("{v:.2}")).collect();
        let _ = writeln!(md, "| {w} | {} |", row.join(" | "));
    }
    let _ = writeln!(md);

    // Fig 12.
    let t = bandwidth::fig12_bw_timeline();
    let _ = writeln!(md, "## Fig. 12 — bandwidth timeline (ds2 + gpt2)\n");
    let _ = writeln!(
        md,
        "windows with single-workload demand >= 0.5 peak: {:.0}%\n",
        t.frac_above_half * 100.0
    );
    let _ =
        writeln!(md, "windows with summed demand > peak: {:.0}%\n", t.frac_sum_above_peak * 100.0);

    // Figs 13/14.
    for (title, sweep) in [
        (
            "Fig. 13 — PTW partitioning, performance",
            translation::fig13_ptw_partition_performance(&mut h),
        ),
        ("Fig. 14 — PTW partitioning, fairness", translation::fig14_ptw_partition_fairness(&mut h)),
    ] {
        let _ = writeln!(md, "## {title}\n");
        let _ = writeln!(md, "| {} |", translation::PTW_LABELS.join(" | "));
        let _ = writeln!(md, "|{}|", vec!["----"; translation::PTW_LABELS.len()].join("|"));
        let row: Vec<String> = sweep.overall.iter().map(|v| format!("{v:.3}")).collect();
        let _ = writeln!(md, "| {} |\n", row.join(" | "));
    }

    // Figs 15/16.
    let p = translation::fig15_page_size_single(&mut h);
    let _ = writeln!(md, "## Fig. 15 — page-size speedup (single core)\n");
    let _ = writeln!(md, "| workload | 64KB | 1MB |");
    let _ = writeln!(md, "|----------|------|-----|");
    for (w, a, b) in &p.rows {
        let _ = writeln!(md, "| {w} | {a:.3} | {b:.3} |");
    }
    let _ = writeln!(md, "| **geomean** | {:.3} | {:.3} |\n", p.overall.0, p.overall.1);

    let m = translation::fig16_page_size_multi(&mut h);
    let _ = writeln!(md, "## Fig. 16 — page-size scaling (+DWT)\n");
    let _ = writeln!(md, "| cores | perf 64KB | perf 1MB | fair 4KB | fair 64KB | fair 1MB |");
    let _ = writeln!(md, "|-------|-----------|----------|----------|-----------|----------|");
    for (cores, perf, fair) in &m.rows {
        let _ = writeln!(
            md,
            "| {cores} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |",
            perf[0], perf[1], fair[0], fair[1], fair[2]
        );
    }
    let _ = writeln!(md);

    // Figs 17/18.
    let tables = mapping::PairTables::build(&mut h);
    for (title, study) in [
        ("Fig. 17 — mapping study, performance", mapping::fig17_mapping_performance(&tables)),
        ("Fig. 18 — mapping study, fairness", mapping::fig18_mapping_fairness(&tables)),
    ] {
        let _ = writeln!(md, "## {title}\n");
        let _ = writeln!(
            md,
            "prediction beats random in {:.1}% of {} multisets; median chosen/oracle/worst = {:.3}/{:.3}/{:.3}\n",
            study.frac_better_than_random * 100.0,
            study.sampled,
            study.prediction.quantile(0.5),
            study.oracle.quantile(0.5),
            study.worst.quantile(0.5)
        );
    }

    std::fs::write(&out_path, md).expect("write report");
    println!("wrote {out_path}");
}
