//! Wall-clock throughput benchmark for the simulation hot path.
//!
//! Runs the fig04 dual-core sweep workloads (all 36 mixes × 4 co-run
//! sharing levels plus the 8 Ideal solos — 152 simulations) serially,
//! measuring end-to-end sweep seconds and simulated-cycles-per-second, and
//! appends the result to `BENCH_hotpath.json` at the repository root — the
//! perf trajectory across PRs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mnpu-bench --bin mnpu_hotpath [-- --tiny] [-- --label NAME]
//! ```
//!
//! * `--tiny` — a 5-simulation smoke workload including one warm-start
//!   prefix group (CI: catches pathological slowdowns or panics in the
//!   bench path without paying for the sweep);
//! * `--label NAME` — label recorded in the JSON entry (default `current`;
//!   `MNPU_BENCH_LABEL` works too);
//! * `--probe-stats` — run every simulation with the statistics probe
//!   ([`mnpu_engine::ProbeMode::Stats`]) instead of the zero-cost null
//!   probe, to measure the observability overhead;
//! * `--csv PATH` — write the final simulation's per-core counter CSV
//!   ([`mnpu_engine::Format::Csv`]) to `PATH` (a CI artifact);
//! * `--check PATH` — compare this run's `simulated_cycles_per_sec`
//!   against the newest same-mode `"baseline"`-labeled entry in `PATH` and
//!   exit non-zero below `MNPU_BENCH_TOLERANCE` (default 0.95) of it;
//! * `--repeat N` — run the sweep `N` times and keep the fastest
//!   (best-of-N suppresses scheduler noise; defaults to 5 under `--tiny`,
//!   where the sweep is tens of milliseconds, and 1 otherwise).
//!
//! `MNPU_BENCH_OUT` overrides the output path. `MNPU_NO_PREFIX_SHARE=1`
//! disables warm-start prefix sharing across sharing levels; the recorded
//! `simulated_cycles` and `dram_transactions` are identical in both modes
//! (the entry's `prefix_share` field says which one ran).

use mnpu_bench::{prefix_share_enabled, sweeps, Harness, SweepCounts};
use mnpu_engine::{Emit, Format, ProbeMode};
use std::path::PathBuf;
use std::time::Instant;

struct SweepResult {
    wall_seconds: f64,
    counts: SweepCounts,
}

/// Time one pass of [`sweeps::run_counts`] — the counts themselves come
/// from the shared sweep definitions, so this binary, the CI smoke and the
/// daemon all accumulate identical numbers.
fn run_sweep(h: &Harness, reqs: &[sweeps::SweepRequest]) -> SweepResult {
    let t0 = Instant::now();
    let counts = sweeps::run_counts(h, reqs);
    SweepResult { wall_seconds: t0.elapsed().as_secs_f64(), counts }
}

/// Append `entry` to the JSON array in `path` (created when missing). The
/// file stays a plain JSON array of objects, one entry per line.
fn append_entry(path: &PathBuf, entry: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(text) => {
            let inner = text.trim().trim_start_matches('[').trim_end_matches(']').trim();
            if inner.is_empty() {
                format!("[\n{entry}\n]\n")
            } else {
                format!("[\n{inner},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, body)
}

/// Newest `"label":"baseline"` entry of `mode` in the bench-history file:
/// its `simulated_cycles_per_sec`. Entries are one object per line, written
/// by this binary, so a line-wise scan is an honest parser for them.
fn baseline_cycles_per_sec(path: &PathBuf, mode: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let mode_tag = format!("\"mode\":\"{mode}\"");
    text.lines()
        .filter(|l| l.contains("\"label\":\"baseline\"") && l.contains(&mode_tag))
        .filter_map(|l| {
            let rest = l.split("\"simulated_cycles_per_sec\":").nth(1)?;
            let num: String =
                rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
            num.parse::<f64>().ok()
        })
        .next_back()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let probe_stats = args.iter().any(|a| a == "--probe-stats");
    let arg_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let label = arg_value("--label")
        .or_else(|| std::env::var("MNPU_BENCH_LABEL").ok())
        .unwrap_or_else(|| "current".to_string());
    let csv_path = arg_value("--csv").map(PathBuf::from);
    let check_path = arg_value("--check").map(PathBuf::from);
    let repeat = arg_value("--repeat")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if tiny { 5 } else { 1 })
        .max(1);

    // The throughput benchmark must always measure real simulations.
    std::env::set_var("MNPU_NO_CACHE", "1");

    let h = Harness::new();
    let (mode, mut reqs) = if tiny { ("tiny", sweeps::tiny()) } else { ("fig04", sweeps::fig04()) };
    if probe_stats {
        for (cfg, _) in &mut reqs {
            cfg.probe = ProbeMode::Stats;
        }
    }
    let mut r = run_sweep(&h, &reqs);
    for _ in 1..repeat {
        let again = run_sweep(&h, &reqs);
        if again.wall_seconds < r.wall_seconds {
            r = again;
        }
    }

    let cycles_per_sec = r.counts.simulated_cycles as f64 / r.wall_seconds;
    let probe_name = if probe_stats { "stats" } else { "null" };
    let prefix_share = if prefix_share_enabled() { "on" } else { "off" };
    let entry = format!(
        "{{\"label\":\"{label}\",\"mode\":\"{mode}\",\"probe\":\"{probe_name}\",\
         \"prefix_share\":\"{prefix_share}\",\"sims\":{},\
         \"sweep_seconds\":{:.3},\"simulated_cycles\":{},\"simulated_cycles_per_sec\":{:.0},\
         \"dram_transactions\":{}}}",
        r.counts.sims,
        r.wall_seconds,
        r.counts.simulated_cycles,
        cycles_per_sec,
        r.counts.dram_transactions
    );
    println!("{entry}");

    if let Some(path) = &csv_path {
        let report = r.counts.last_report.as_ref().expect("sweep ran at least one simulation");
        let mut buf = Vec::new();
        report.emit(Format::Csv, &mut buf).expect("Vec sink never fails");
        if let Err(e) = std::fs::write(path, buf) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("stats CSV written to {}", path.display());
    }

    let out = std::env::var("MNPU_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|_| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
    });
    match append_entry(&out, &entry) {
        Ok(()) => eprintln!("appended to {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    if let Some(path) = &check_path {
        let tolerance = std::env::var("MNPU_BENCH_TOLERANCE")
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .unwrap_or(0.95);
        match baseline_cycles_per_sec(path, mode) {
            Some(base) => {
                let floor = base * tolerance;
                if cycles_per_sec < floor {
                    eprintln!(
                        "PERF REGRESSION: {cycles_per_sec:.0} cycles/s < {floor:.0} \
                         ({tolerance:.2} x baseline {base:.0}, mode {mode})"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "perf check ok: {cycles_per_sec:.0} cycles/s >= {floor:.0} \
                     ({tolerance:.2} x baseline {base:.0}, mode {mode})"
                );
            }
            None => {
                eprintln!(
                    "no \"baseline\"-labeled {mode} entry in {} — cannot check",
                    path.display()
                );
                std::process::exit(2);
            }
        }
    }
}
