//! Wall-clock throughput benchmark for the simulation hot path.
//!
//! Runs the fig04 dual-core sweep workloads (all 36 mixes × 4 co-run
//! sharing levels plus the 8 Ideal solos — 152 simulations) serially,
//! measuring end-to-end sweep seconds and simulated-cycles-per-second, and
//! appends the result to `BENCH_hotpath.json` at the repository root — the
//! perf trajectory across PRs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mnpu-bench --bin mnpu_hotpath [-- --tiny] [-- --label NAME]
//! ```
//!
//! * `--tiny` — a 5-simulation smoke workload including one warm-start
//!   prefix group (CI: catches pathological slowdowns or panics in the
//!   bench path without paying for the sweep);
//! * `--label NAME` — label recorded in the JSON entry (default `current`;
//!   `MNPU_BENCH_LABEL` works too);
//! * `--probe-stats` — run every simulation with the statistics probe
//!   ([`mnpu_engine::ProbeMode::Stats`]) instead of the zero-cost null
//!   probe, to measure the observability overhead;
//! * `--csv PATH` — write the final simulation's per-core counter CSV
//!   ([`mnpu_engine::Format::Csv`]) to `PATH` (a CI artifact);
//! * `--check PATH` — compare this run's `simulated_cycles_per_sec`
//!   against the newest same-mode `"baseline"`-labeled entry in `PATH` and
//!   exit non-zero below `MNPU_BENCH_TOLERANCE` (default 0.95) of it;
//! * `--repeat N` — run the sweep `N` times and keep the fastest
//!   (best-of-N suppresses scheduler noise; defaults to 5 under `--tiny`,
//!   where the sweep is tens of milliseconds, and 1 otherwise);
//! * `--flight-gate` — instead of recording an entry, run an in-process
//!   A/B of the same sweep with the flight recorder off and on (an
//!   installed [`mnpu_trace::TraceHandle`] receiving per-unit progress
//!   and ring events — the always-on telemetry the daemon attaches to
//!   every job), assert the accumulated counts are byte-identical, and
//!   exit non-zero when recorder-on throughput falls below
//!   `MNPU_FLIGHT_TOLERANCE` (default 0.95) of recorder-off — the CI
//!   overhead gate for the observability layer. The *dense* per-event
//!   instrumentation ([`mnpu_engine::ProbeMode::Flight`]) is opt-in per
//!   job and priced like `--probe-stats`, so it is reported but not
//!   gated.
//!
//! `MNPU_BENCH_OUT` overrides the output path. `MNPU_NO_PREFIX_SHARE=1`
//! disables warm-start prefix sharing across sharing levels; the recorded
//! `simulated_cycles` and `dram_transactions` are identical in both modes
//! (the entry's `prefix_share` field says which one ran).

use mnpu_bench::{prefix_share_enabled, sweeps, Harness, SweepCounts};
use mnpu_engine::{Emit, Format, ProbeMode};
use std::path::PathBuf;
use std::time::Instant;

struct SweepResult {
    wall_seconds: f64,
    counts: SweepCounts,
}

/// Time one pass of [`sweeps::run_counts`] — the counts themselves come
/// from the shared sweep definitions, so this binary, the CI smoke and the
/// daemon all accumulate identical numbers.
fn run_sweep(h: &Harness, reqs: &[sweeps::SweepRequest]) -> SweepResult {
    let t0 = Instant::now();
    let counts = sweeps::run_counts(h, reqs);
    SweepResult { wall_seconds: t0.elapsed().as_secs_f64(), counts }
}

/// Append `entry` to the JSON array in `path` (created when missing). The
/// file stays a plain JSON array of objects, one entry per line.
fn append_entry(path: &PathBuf, entry: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(text) => {
            let inner = text.trim().trim_start_matches('[').trim_end_matches(']').trim();
            if inner.is_empty() {
                format!("[\n{entry}\n]\n")
            } else {
                format!("[\n{inner},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, body)
}

/// Newest `"label":"baseline"` entry of `mode` in the bench-history file:
/// its `simulated_cycles_per_sec`. Entries are one object per line, written
/// by this binary, so a line-wise scan is an honest parser for them.
fn baseline_cycles_per_sec(path: &PathBuf, mode: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let mode_tag = format!("\"mode\":\"{mode}\"");
    text.lines()
        .filter(|l| l.contains("\"label\":\"baseline\"") && l.contains(&mode_tag))
        .filter_map(|l| {
            let rest = l.split("\"simulated_cycles_per_sec\":").nth(1)?;
            let num: String =
                rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
            num.parse::<f64>().ok()
        })
        .next_back()
}

/// Time one recorder-on pass: the sweep runs with a
/// [`TraceHandle`](mnpu_trace::TraceHandle) installed and receiving
/// per-unit progress — exactly the telemetry the daemon attaches to every
/// job it dispatches.
fn run_sweep_observed(
    h: &Harness,
    reqs: &[sweeps::SweepRequest],
    trace: &mnpu_trace::TraceHandle,
) -> SweepResult {
    let _g = mnpu_trace::install(trace);
    let t0 = Instant::now();
    let counts = sweeps::run_counts_observed(h, reqs, Some(trace), &mut || false)
        .expect("an unstoppable sweep always completes");
    SweepResult { wall_seconds: t0.elapsed().as_secs_f64(), counts }
}

/// The `--flight-gate` A/B: interleaved best-of-N passes of the same
/// requests with the always-on recorder off and on, counts checked for
/// identity, throughput checked against the tolerance. The opt-in dense
/// probe ([`ProbeMode::Flight`]) is timed once and reported, not gated.
/// Exits the process.
fn flight_gate(h: &Harness, reqs: &[sweeps::SweepRequest], repeat: usize) -> ! {
    // Warm both sides once: trace memoization and page-cache effects must
    // not be charged to whichever side runs first.
    let trace = mnpu_trace::TraceHandle::new();
    let warm_off = run_sweep(h, reqs);
    let warm_on = run_sweep_observed(h, reqs, &trace);
    assert_eq!(
        warm_off.counts.to_json(),
        warm_on.counts.to_json(),
        "the flight recorder changed accumulated counts — determinism violation"
    );
    let (mut off, mut on) = (warm_off.wall_seconds, warm_on.wall_seconds);
    for _ in 0..repeat {
        off = off.min(run_sweep(h, reqs).wall_seconds);
        on = on.min(run_sweep_observed(h, reqs, &trace).wall_seconds);
    }
    // Informational: the dense per-event probe, priced like --probe-stats.
    let mut dense_reqs = reqs.to_vec();
    for (cfg, _) in &mut dense_reqs {
        cfg.probe = ProbeMode::Flight;
    }
    let dense = {
        let _g = mnpu_trace::install(&trace);
        run_sweep(h, &dense_reqs)
    };
    assert_eq!(
        warm_off.counts.to_json(),
        dense.counts.to_json(),
        "the dense flight probe changed accumulated counts — determinism violation"
    );
    let tolerance = std::env::var("MNPU_FLIGHT_TOLERANCE")
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(0.95);
    let ratio = off / on; // recorder-on throughput relative to off
    println!(
        "{{\"flight_gate\":{},\"off_seconds\":{off:.4},\"on_seconds\":{on:.4},\
         \"throughput_ratio\":{ratio:.3},\"tolerance\":{tolerance:.2},\
         \"dense_probe_seconds\":{:.4}}}",
        ratio >= tolerance,
        dense.wall_seconds
    );
    if ratio < tolerance {
        eprintln!(
            "FLIGHT OVERHEAD: recorder-on ran at {:.1}% of recorder-off throughput \
             (floor {:.1}%)",
            ratio * 100.0,
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "flight gate ok: recorder-on at {:.1}% of recorder-off throughput (floor {:.1}%)",
        ratio * 100.0,
        tolerance * 100.0
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let probe_stats = args.iter().any(|a| a == "--probe-stats");
    let arg_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let label = arg_value("--label")
        .or_else(|| std::env::var("MNPU_BENCH_LABEL").ok())
        .unwrap_or_else(|| "current".to_string());
    let csv_path = arg_value("--csv").map(PathBuf::from);
    let check_path = arg_value("--check").map(PathBuf::from);
    let repeat = arg_value("--repeat")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if tiny { 5 } else { 1 })
        .max(1);

    // The throughput benchmark must always measure real simulations.
    std::env::set_var("MNPU_NO_CACHE", "1");

    let h = Harness::new();
    let (mode, mut reqs) = if tiny { ("tiny", sweeps::tiny()) } else { ("fig04", sweeps::fig04()) };
    if args.iter().any(|a| a == "--flight-gate") {
        flight_gate(&h, &reqs, repeat);
    }
    if probe_stats {
        for (cfg, _) in &mut reqs {
            cfg.probe = ProbeMode::Stats;
        }
    }
    let mut r = run_sweep(&h, &reqs);
    for _ in 1..repeat {
        let again = run_sweep(&h, &reqs);
        if again.wall_seconds < r.wall_seconds {
            r = again;
        }
    }

    let cycles_per_sec = r.counts.simulated_cycles as f64 / r.wall_seconds;
    let probe_name = if probe_stats { "stats" } else { "null" };
    let prefix_share = if prefix_share_enabled() { "on" } else { "off" };
    let entry = format!(
        "{{\"label\":\"{label}\",\"mode\":\"{mode}\",\"probe\":\"{probe_name}\",\
         \"prefix_share\":\"{prefix_share}\",\"sims\":{},\
         \"sweep_seconds\":{:.3},\"simulated_cycles\":{},\"simulated_cycles_per_sec\":{:.0},\
         \"dram_transactions\":{}}}",
        r.counts.sims,
        r.wall_seconds,
        r.counts.simulated_cycles,
        cycles_per_sec,
        r.counts.dram_transactions
    );
    println!("{entry}");

    if let Some(path) = &csv_path {
        let report = r.counts.last_report.as_ref().expect("sweep ran at least one simulation");
        let mut buf = Vec::new();
        report.emit(Format::Csv, &mut buf).expect("Vec sink never fails");
        if let Err(e) = std::fs::write(path, buf) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("stats CSV written to {}", path.display());
    }

    let out = std::env::var("MNPU_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|_| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
    });
    match append_entry(&out, &entry) {
        Ok(()) => eprintln!("appended to {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    if let Some(path) = &check_path {
        let tolerance = std::env::var("MNPU_BENCH_TOLERANCE")
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .unwrap_or(0.95);
        match baseline_cycles_per_sec(path, mode) {
            Some(base) => {
                let floor = base * tolerance;
                if cycles_per_sec < floor {
                    eprintln!(
                        "PERF REGRESSION: {cycles_per_sec:.0} cycles/s < {floor:.0} \
                         ({tolerance:.2} x baseline {base:.0}, mode {mode})"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "perf check ok: {cycles_per_sec:.0} cycles/s >= {floor:.0} \
                     ({tolerance:.2} x baseline {base:.0}, mode {mode})"
                );
            }
            None => {
                eprintln!(
                    "no \"baseline\"-labeled {mode} entry in {} — cannot check",
                    path.display()
                );
                std::process::exit(2);
            }
        }
    }
}
