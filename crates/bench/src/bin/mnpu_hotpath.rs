//! Wall-clock throughput benchmark for the simulation hot path.
//!
//! Runs the fig04 dual-core sweep workloads (all 36 mixes × 4 co-run
//! sharing levels plus the 8 Ideal solos — 152 simulations) serially,
//! measuring end-to-end sweep seconds and simulated-cycles-per-second, and
//! appends the result to `BENCH_hotpath.json` at the repository root — the
//! perf trajectory across PRs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mnpu-bench --bin mnpu_hotpath [-- --tiny] [-- --label NAME]
//! ```
//!
//! * `--tiny` — a 3-simulation smoke workload (CI: catches pathological
//!   slowdowns or panics in the bench path without paying for the sweep);
//! * `--label NAME` — label recorded in the JSON entry (default `current`;
//!   `MNPU_BENCH_LABEL` works too).
//!
//! `MNPU_BENCH_OUT` overrides the output path.

use mnpu_bench::Harness;
use mnpu_engine::{SharingLevel, SystemConfig};
use mnpu_predict::mapping::multisets;
use std::path::PathBuf;
use std::time::Instant;

struct SweepResult {
    sims: usize,
    wall_seconds: f64,
    simulated_cycles: u64,
    transactions: u64,
}

/// Run every request serially through the full report path (no run cache,
/// memoized traces — the same work a cold sweep does per simulation).
fn run_sweep(h: &Harness, reqs: &[(SystemConfig, Vec<usize>)]) -> SweepResult {
    let t0 = Instant::now();
    let mut simulated_cycles = 0u64;
    let mut transactions = 0u64;
    for (cfg, ws) in reqs {
        let r = h.run_report(cfg, ws);
        simulated_cycles += r.total_cycles;
        transactions += r.dram.total.transactions();
    }
    SweepResult {
        sims: reqs.len(),
        wall_seconds: t0.elapsed().as_secs_f64(),
        simulated_cycles,
        transactions,
    }
}

/// The fig04 sweep: 8 Ideal solos + 36 mixes × 4 co-run levels.
fn fig04_requests() -> Vec<(SystemConfig, Vec<usize>)> {
    let solo = Harness::dual(SharingLevel::Static).ideal_solo();
    let mut reqs: Vec<(SystemConfig, Vec<usize>)> =
        (0..8).map(|w| (solo.clone(), vec![w])).collect();
    for ws in multisets(8, 2) {
        for lvl in SharingLevel::CO_RUN_LEVELS {
            reqs.push((Harness::dual(lvl), ws.clone()));
        }
    }
    reqs
}

/// CI smoke: two fast mixes and one solo — seconds, not minutes.
fn tiny_requests() -> Vec<(SystemConfig, Vec<usize>)> {
    vec![
        (Harness::dual(SharingLevel::Static).ideal_solo(), vec![6]),
        (Harness::dual(SharingLevel::Static), vec![6, 6]),
        (Harness::dual(SharingLevel::PlusDwt), vec![6, 7]),
    ]
}

/// Append `entry` to the JSON array in `path` (created when missing). The
/// file stays a plain JSON array of objects, one entry per line.
fn append_entry(path: &PathBuf, entry: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(text) => {
            let inner = text.trim().trim_start_matches('[').trim_end_matches(']').trim();
            if inner.is_empty() {
                format!("[\n{entry}\n]\n")
            } else {
                format!("[\n{inner},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, body)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("MNPU_BENCH_LABEL").ok())
        .unwrap_or_else(|| "current".to_string());

    // The throughput benchmark must always measure real simulations.
    std::env::set_var("MNPU_NO_CACHE", "1");

    let h = Harness::new();
    let (mode, reqs) = if tiny { ("tiny", tiny_requests()) } else { ("fig04", fig04_requests()) };
    let r = run_sweep(&h, &reqs);

    let cycles_per_sec = r.simulated_cycles as f64 / r.wall_seconds;
    let entry = format!(
        "{{\"label\":\"{label}\",\"mode\":\"{mode}\",\"sims\":{},\"sweep_seconds\":{:.3},\
         \"simulated_cycles\":{},\"simulated_cycles_per_sec\":{:.0},\"dram_transactions\":{}}}",
        r.sims, r.wall_seconds, r.simulated_cycles, cycles_per_sec, r.transactions
    );
    println!("{entry}");

    let out = std::env::var("MNPU_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|_| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
    });
    match append_entry(&out, &entry) {
        Ok(()) => eprintln!("appended to {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
