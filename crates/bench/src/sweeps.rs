//! Canonical sweep definitions shared by every sweep driver.
//!
//! The `mnpu_hotpath` binary, the CI smoke jobs and the `mnpu-serviced`
//! daemon all run "the tiny sweep" or "the fig04 sweep" and compare
//! accumulated counts. Those definitions live here — one place — so the
//! comparison is between *drivers*, never between diverging copies of the
//! workload list: a sweep submitted to the daemon must accumulate exactly
//! the counts `mnpu_hotpath --tiny` prints, and both call [`run_counts`]
//! over [`tiny`].

use crate::{plan_units, Harness, SweepUnit};
use mnpu_engine::{RunReport, SharingLevel, SystemConfig};
use mnpu_predict::mapping::multisets;

/// One sweep request: a system configuration plus zoo workload indices,
/// one per core.
pub type SweepRequest = (SystemConfig, Vec<usize>);

/// What a sweep simulated, accumulated in request order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCounts {
    /// Number of simulations run.
    pub sims: usize,
    /// Sum of every report's `total_cycles`.
    pub simulated_cycles: u64,
    /// Sum of every report's DRAM transactions.
    pub dram_transactions: u64,
    /// The final request's full report (stable across execution plans).
    pub last_report: Option<RunReport>,
}

impl SweepCounts {
    /// The counts as a stable JSON object (the fragment the hotpath entry
    /// and the daemon's sweep result share verbatim).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sims\":{},\"simulated_cycles\":{},\"dram_transactions\":{}}}",
            self.sims, self.simulated_cycles, self.dram_transactions
        )
    }
}

/// CI smoke: one solo, one static mix, and one mix across all three co-run
/// MMU levels — seconds, not minutes. The last three share a divergence
/// key, so the tiny sweep exercises a real warm-start prefix group (and
/// degrades to three independent runs under `MNPU_NO_PREFIX_SHARE=1`).
pub fn tiny() -> Vec<SweepRequest> {
    vec![
        (Harness::dual(SharingLevel::Static).ideal_solo(), vec![6]),
        (Harness::dual(SharingLevel::Static), vec![6, 6]),
        (Harness::dual(SharingLevel::PlusD), vec![6, 7]),
        (Harness::dual(SharingLevel::PlusDw), vec![6, 7]),
        (Harness::dual(SharingLevel::PlusDwt), vec![6, 7]),
    ]
}

/// The fig04 sweep: 8 Ideal solos + 36 mixes × 4 co-run levels (152
/// simulations).
pub fn fig04() -> Vec<SweepRequest> {
    let solo = Harness::dual(SharingLevel::Static).ideal_solo();
    let mut reqs: Vec<SweepRequest> = (0..8).map(|w| (solo.clone(), vec![w])).collect();
    for ws in multisets(8, 2) {
        for lvl in SharingLevel::CO_RUN_LEVELS {
            reqs.push((Harness::dual(lvl), ws.clone()));
        }
    }
    reqs
}

/// A named canonical sweep, or `None` for an unknown name.
pub fn by_name(name: &str) -> Option<Vec<SweepRequest>> {
    match name {
        "tiny" => Some(tiny()),
        "fig04" => Some(fig04()),
        _ => None,
    }
}

/// Run every request serially through the full report path (no run cache,
/// memoized traces — the same work a cold sweep does per simulation) and
/// accumulate counts in request order.
///
/// Requests differing only in MMU organization run as warm-start prefix
/// groups unless `MNPU_NO_PREFIX_SHARE=1` (see [`crate::prefix`]); the
/// accumulated counts are bit-identical in both modes — only the wall
/// clock moves.
pub fn run_counts(h: &Harness, reqs: &[SweepRequest]) -> SweepCounts {
    run_counts_with(h, reqs, &mut || false).expect("an unstoppable sweep always completes")
}

/// [`run_counts`] with a stop check consulted before each execution unit
/// (a single simulation or a whole warm-start prefix group — the
/// boundaries where abandoning a sweep wastes no finished work).
///
/// Returns `None` when `should_stop` fired: sweeps accumulate across
/// simulations and have no mid-sweep snapshot, so a stopped sweep reports
/// nothing rather than a misleading partial count.
pub fn run_counts_with(
    h: &Harness,
    reqs: &[SweepRequest],
    should_stop: &mut dyn FnMut() -> bool,
) -> Option<SweepCounts> {
    run_counts_observed(h, reqs, None, should_stop)
}

/// [`run_counts_with`] with live telemetry: after each execution unit the
/// sweep's progress — finished simulations, finished units, accumulated
/// simulated cycles — is published to `trace`'s progress cell, so a
/// `/progress` poll of a long daemon sweep shows movement between units.
///
/// Telemetry is observation only: the returned counts are byte-identical
/// to [`run_counts_with`] with or without a handle.
pub fn run_counts_observed(
    h: &Harness,
    reqs: &[SweepRequest],
    trace: Option<&mnpu_trace::TraceHandle>,
    should_stop: &mut dyn FnMut() -> bool,
) -> Option<SweepCounts> {
    let units = plan_units(reqs.iter().map(|(cfg, ws)| (cfg, ws.as_slice())));
    let mut reports: Vec<Option<RunReport>> = reqs.iter().map(|_| None).collect();
    let (mut done_sims, mut done_units, mut done_cycles) = (0u64, 0u64, 0u64);
    for unit in &units {
        if should_stop() {
            return None;
        }
        match unit {
            SweepUnit::Single(i) => {
                let (cfg, ws) = &reqs[*i];
                let r = h.run_report(cfg, ws);
                done_sims += 1;
                done_cycles = done_cycles.saturating_add(r.total_cycles);
                reports[*i] = Some(r);
            }
            SweepUnit::Group(members) => {
                let cfgs: Vec<SystemConfig> = members.iter().map(|&i| reqs[i].0.clone()).collect();
                let group = h.run_reports_shared(&cfgs, &reqs[members[0]].1);
                for (&i, r) in members.iter().zip(group) {
                    done_sims += 1;
                    done_cycles = done_cycles.saturating_add(r.total_cycles);
                    reports[i] = Some(r);
                }
            }
        }
        done_units += 1;
        if let Some(t) = trace {
            t.publish_sweep(done_sims, done_units, done_cycles);
        }
    }
    // Accumulate in request order so the "last" report is stable across
    // execution plans.
    let mut simulated_cycles = 0u64;
    let mut dram_transactions = 0u64;
    let mut last_report = None;
    for r in reports.into_iter().map(|r| r.expect("every request ran")) {
        simulated_cycles += r.total_cycles;
        dram_transactions += r.dram.total.transactions();
        last_report = Some(r);
    }
    Some(SweepCounts { sims: reqs.len(), simulated_cycles, dram_transactions, last_report })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_five_requests_with_a_prefix_group() {
        let reqs = tiny();
        assert_eq!(reqs.len(), 5);
        let units = plan_units(reqs.iter().map(|(cfg, ws)| (cfg, ws.as_slice())));
        assert!(
            units.iter().any(|u| matches!(u, SweepUnit::Group(m) if m.len() == 3))
                || !crate::prefix_share_enabled(),
            "the tiny sweep must exercise a warm-start prefix group"
        );
    }

    #[test]
    fn by_name_resolves_canonical_sweeps() {
        assert_eq!(by_name("tiny").map(|r| r.len()), Some(5));
        assert_eq!(by_name("fig04").map(|r| r.len()), Some(152));
        assert!(by_name("fig99").is_none());
    }

    #[test]
    fn run_counts_with_stops_between_units() {
        let h = Harness::new();
        let reqs = vec![(Harness::dual(SharingLevel::Static).ideal_solo(), vec![6])];
        // A stop check that fires immediately runs nothing.
        assert_eq!(run_counts_with(&h, &reqs, &mut || true), None);
    }

    #[test]
    fn counts_json_is_stable() {
        let c =
            SweepCounts { sims: 2, simulated_cycles: 100, dram_transactions: 7, last_report: None };
        assert_eq!(c.to_json(), "{\"sims\":2,\"simulated_cycles\":100,\"dram_transactions\":7}");
    }
}
