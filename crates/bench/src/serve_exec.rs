//! Parallel execution of serve-mode scenario lists.
//!
//! [`ServeExecutor`] is the scheduling-layer sibling of
//! [`crate::SweepExecutor`]: it fans a list of [`ScenarioSpec`]s out across
//! worker threads, memoizes each distinct scenario's [`ServeReport`], and
//! returns results in request order. Every serve run is single-threaded
//! and deterministic, so the reports are byte-identical to the serial path
//! regardless of worker count — the `serve_parallel` integration test
//! pins that down.

use crate::harness::fnv1a;
use mnpu_config::ScenarioSpec;
use mnpu_sched::{serve, ServeReport};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Fans serve-mode scenarios out across worker threads, memoizing reports.
///
/// The worker count comes from the `MNPU_JOBS` environment variable when
/// set (minimum 1), otherwise from [`std::thread::available_parallelism`].
/// Unlike the sweep cache, the scenario memo is in-memory only: a
/// [`ServeReport`] carries full per-core run state and is not worth
/// persisting across processes.
#[derive(Clone)]
pub struct ServeExecutor {
    jobs: usize,
    memo: Arc<Mutex<HashMap<u64, Arc<ServeReport>>>>,
    hits: Arc<AtomicUsize>,
}

impl Default for ServeExecutor {
    fn default() -> Self {
        ServeExecutor::new()
    }
}

impl ServeExecutor {
    /// An executor sized by `MNPU_JOBS`, defaulting to the machine's
    /// available parallelism.
    pub fn new() -> Self {
        let jobs = std::env::var("MNPU_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
        ServeExecutor::with_jobs(jobs)
    }

    /// An executor with an explicit worker count (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        ServeExecutor {
            jobs: jobs.max(1),
            memo: Arc::new(Mutex::new(HashMap::new())),
            hits: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The worker count this executor fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// How many requested scenarios were answered from the memo instead of
    /// simulated — duplicates within one list and repeats across calls both
    /// count. Deterministic for a given request history, independent of the
    /// worker count.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Structural memo key: the scenario's `Debug` form hashed, matching
    /// the sweep cache's keying idiom.
    fn key(spec: &ScenarioSpec) -> u64 {
        fnv1a(&format!("{spec:?}"))
    }

    /// Serve every scenario (deduplicated, memo hits skipped) and return
    /// the reports in request order.
    pub fn run_scenarios(&self, specs: &[ScenarioSpec]) -> Vec<Arc<ServeReport>> {
        // Drop duplicates and already-memoized scenarios so workers only
        // see fresh work; every skipped request is a memo hit.
        let mut seen = HashSet::new();
        let todo: Vec<&ScenarioSpec> = {
            let memo = self.memo.lock().expect("serve memo lock");
            specs
                .iter()
                .filter(|s| {
                    let k = ServeExecutor::key(s);
                    if seen.insert(k) && !memo.contains_key(&k) {
                        true
                    } else {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        false
                    }
                })
                .collect()
        };

        let workers = self.jobs.min(todo.len());
        if workers <= 1 {
            for spec in &todo {
                let report = Arc::new(serve(spec));
                self.memo.lock().expect("serve memo lock").insert(ServeExecutor::key(spec), report);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let memo = &self.memo;
                    let next = &next;
                    let todo = &todo;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = todo.get(i) else { break };
                        let report = Arc::new(serve(spec));
                        memo.lock()
                            .expect("serve memo lock")
                            .insert(ServeExecutor::key(spec), report);
                    });
                }
            });
        }

        // Everything is memoized now; assemble results in request order.
        let memo = self.memo.lock().expect("serve memo lock");
        specs
            .iter()
            .map(|s| Arc::clone(memo.get(&ServeExecutor::key(s)).expect("memoized above")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_config::parse_scenario;

    fn tiny(pattern: &str) -> ScenarioSpec {
        parse_scenario("t", &format!("cores = 2\npattern = {pattern}\njob = ncf\njob = ncf\n"))
            .unwrap()
    }

    #[test]
    fn serve_executor_clamps_to_one_job() {
        assert_eq!(ServeExecutor::with_jobs(0).jobs(), 1);
        assert!(ServeExecutor::new().jobs() >= 1);
    }

    #[test]
    fn duplicates_and_repeats_hit_the_memo() {
        let ex = ServeExecutor::with_jobs(1);
        let specs = vec![tiny("fixed:1000"), tiny("fixed:2000"), tiny("fixed:1000")];
        let out = ex.run_scenarios(&specs);
        assert_eq!(out.len(), 3);
        assert_eq!(ex.cache_hits(), 1, "third request duplicates the first");
        assert!(Arc::ptr_eq(&out[0], &out[2]), "duplicates share one report");
        ex.run_scenarios(&specs);
        assert_eq!(ex.cache_hits(), 4, "every repeat is a hit");
    }
}
