//! Shared experiment machinery: workloads, Ideal baselines, run cache.

use mnpu_engine::{Advance, Probe, RunReport, SharingLevel, SimSnapshot, Simulation, SystemConfig};
use mnpu_model::{zoo, Network, Scale};
use mnpu_systolic::{ArchConfig, WorkloadTrace};
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Bump to invalidate cached run results after simulator changes.
pub(crate) const CACHE_VERSION: u32 = 5;

/// First line of the on-disk cache; a file whose header does not match is
/// dropped wholesale (stale format or stale simulator).
fn cache_header() -> String {
    format!("#mnpu-run-cache v{CACHE_VERSION}")
}

/// FNV-1a, for compact cache keys.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The memoized run results and where they persist.
#[derive(Debug)]
struct CacheState {
    entries: HashMap<u64, Vec<u64>>,
    path: Option<PathBuf>,
}

impl CacheState {
    /// Rewrite the backing file (header line first).
    fn flush(&self) {
        let Some(p) = &self.path else { return };
        if let Some(parent) = p.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let mut out = cache_header();
        out.push('\n');
        for (k, v) in &self.entries {
            let cycles: Vec<String> = v.iter().map(u64::to_string).collect();
            out.push_str(&format!("{k}\t{}\n", cycles.join(",")));
        }
        if let Ok(mut f) = fs::File::create(p) {
            let _ = f.write_all(out.as_bytes());
        }
    }
}

/// The experiment harness: the eight benchmarks at the active scale, and a
/// memoized, disk-backed `run → per-core cycles` cache.
///
/// All state is behind `Arc`s, so cloning is cheap and every clone shares
/// the same caches — this is what lets [`crate::SweepExecutor`] fan
/// simulations out across worker threads while results land in one place.
///
/// ```no_run
/// use mnpu_bench::Harness;
/// use mnpu_engine::SharingLevel;
///
/// let mut h = Harness::new();
/// let cycles = h.run_mix(&Harness::dual(SharingLevel::PlusDwt), &[0, 1]);
/// assert_eq!(cycles.len(), 2);
/// ```
#[derive(Clone)]
pub struct Harness {
    networks: Arc<Vec<Network>>,
    /// Memoized `WorkloadTrace::generate` results keyed by (workload index,
    /// arch). `ArchConfig` is `Hash + Eq`, so the key is structural — no
    /// per-lookup string formatting on the sweep hot path.
    traces: Arc<Mutex<HashMap<(usize, ArchConfig), WorkloadTrace>>>,
    cache: Arc<Mutex<CacheState>>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Build the harness at bench scale, loading any existing run cache.
    /// A cache file whose version header does not match `CACHE_VERSION`
    /// is discarded entirely.
    pub fn new() -> Self {
        let networks = zoo::all(Scale::Bench);
        let cache_path = if std::env::var_os("MNPU_NO_CACHE").is_some() {
            None
        } else {
            // Bench binaries run with CWD = this crate; anchor the cache at
            // the workspace target directory so every target shares it.
            let target = std::env::var("CARGO_TARGET_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
            Some(target.join("mnpu_run_cache.tsv"))
        };
        let mut entries = HashMap::new();
        if let Some(p) = &cache_path {
            if let Ok(text) = fs::read_to_string(p) {
                let mut lines = text.lines();
                if lines.next() == Some(cache_header().as_str()) {
                    for line in lines {
                        let mut it = line.split('\t');
                        let (Some(k), Some(v)) = (it.next(), it.next()) else { continue };
                        let Ok(key) = k.parse::<u64>() else { continue };
                        let cycles: Vec<u64> =
                            v.split(',').filter_map(|c| c.parse().ok()).collect();
                        if !cycles.is_empty() {
                            entries.insert(key, cycles);
                        }
                    }
                } else {
                    // Wrong or missing version header: drop the stale file.
                    let _ = fs::remove_file(p);
                }
            }
        }
        Harness {
            networks: Arc::new(networks),
            traces: Arc::new(Mutex::new(HashMap::new())),
            cache: Arc::new(Mutex::new(CacheState { entries, path: cache_path })),
        }
    }

    /// Names of the eight benchmarks, Table 1 order.
    pub fn names(&self) -> Vec<&str> {
        self.networks.iter().map(Network::name).collect()
    }

    /// The benchmark networks.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// `true` when `MNPU_FULL=1` requests exhaustive sweeps.
    pub fn full_sweeps() -> bool {
        std::env::var("MNPU_FULL").map(|v| v == "1").unwrap_or(false)
    }

    /// Sampling stride for the quad-core sweep (1 when `MNPU_FULL=1`).
    pub fn quad_stride() -> usize {
        if Harness::full_sweeps() {
            return 1;
        }
        std::env::var("MNPU_QUAD_STRIDE").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
    }

    /// The standard dual-core chip at the given sharing level.
    pub fn dual(sharing: SharingLevel) -> SystemConfig {
        SystemConfig::bench(2, sharing)
    }

    /// The standard quad-core chip at the given sharing level.
    pub fn quad(sharing: SharingLevel) -> SystemConfig {
        SystemConfig::bench(4, sharing)
    }

    pub(crate) fn key(cfg: &SystemConfig, workloads: &[usize]) -> u64 {
        fnv1a(&format!("v{CACHE_VERSION}|{cfg:?}|{workloads:?}"))
    }

    /// The memoized result of a run, if it is already cached.
    pub(crate) fn cached(&self, cfg: &SystemConfig, workloads: &[usize]) -> Option<Vec<u64>> {
        let key = Harness::key(cfg, workloads);
        self.cache.lock().expect("cache lock").entries.get(&key).cloned()
    }

    fn trace_for(&self, workload: usize, arch: &ArchConfig) -> WorkloadTrace {
        if let Some(t) = self.traces.lock().expect("trace lock").get(&(workload, arch.clone())) {
            return t.clone();
        }
        let t = WorkloadTrace::generate(&self.networks[workload], arch);
        self.traces.lock().expect("trace lock").insert((workload, arch.clone()), t.clone());
        t
    }

    /// Run `workloads[i]` on core *i* of `cfg`, returning per-core cycles.
    /// Results are memoized in memory and on disk.
    ///
    /// # Panics
    ///
    /// Panics if the workload count does not match the core count or an
    /// index is out of range.
    pub fn run_mix(&self, cfg: &SystemConfig, workloads: &[usize]) -> Vec<u64> {
        assert_eq!(workloads.len(), cfg.cores, "one workload per core");
        let key = Harness::key(cfg, workloads);
        if let Some(c) = self.cache.lock().expect("cache lock").entries.get(&key) {
            mnpu_trace::counters::add_run_cache_hit();
            return c.clone();
        }
        let traces: Vec<WorkloadTrace> =
            workloads.iter().zip(&cfg.arch).map(|(&w, a)| self.trace_for(w, a)).collect();
        let report = Simulation::execute(cfg, &traces);
        let cycles: Vec<u64> = report.cores.iter().map(|c| c.cycles).collect();
        let mut cache = self.cache.lock().expect("cache lock");
        cache.entries.insert(key, cycles.clone());
        cache.flush();
        cycles
    }

    /// Run `workloads[i]` on core *i* of `cfg` and return the full
    /// [`mnpu_engine::RunReport`], bypassing the cycles cache (the report
    /// carries state — DRAM stats, traces — that the cache does not).
    /// Traces still come from the shared memoized trace cache.
    ///
    /// # Panics
    ///
    /// Panics if the workload count does not match the core count or an
    /// index is out of range.
    pub fn run_report(&self, cfg: &SystemConfig, workloads: &[usize]) -> mnpu_engine::RunReport {
        assert_eq!(workloads.len(), cfg.cores, "one workload per core");
        let traces: Vec<WorkloadTrace> =
            workloads.iter().zip(&cfg.arch).map(|(&w, a)| self.trace_for(w, a)).collect();
        Simulation::execute(cfg, &traces)
    }

    /// Run one prefix-sharing group — configurations identical except for
    /// MMU organization (see [`crate::prefix::eligible`] and
    /// [`crate::prefix::divergence_key`]), all executing `workloads` — and
    /// return the full report of each, in `cfgs` order.
    ///
    /// `cfgs[0]` is simulated as the representative with one shadow MMU
    /// per remaining configuration; each variant is then finished from the
    /// last checkpoint at which its shadow was still in lockstep. The
    /// engine only forks checkpoints it has *verified* equivalent, so the
    /// reports are byte-identical to independent runs no matter when (or
    /// whether) each variant diverges.
    ///
    /// # Panics
    ///
    /// Panics if `cfgs` is empty, the workload count does not match the
    /// core count, or a configuration violates the shadow machinery's
    /// requirements (translation off, mismatched core counts).
    pub fn run_reports_shared(&self, cfgs: &[SystemConfig], workloads: &[usize]) -> Vec<RunReport> {
        fn drive<P: Probe>(sim: &mut Simulation<P>, stop: u64) -> Advance {
            loop {
                match sim.advance(stop) {
                    Advance::CoreFinished { .. } => continue,
                    outcome => return outcome,
                }
            }
        }
        let rep_cfg = cfgs.first().expect("a prefix group has a representative");
        assert_eq!(workloads.len(), rep_cfg.cores, "one workload per core");
        // Telemetry: the whole group is serviced by one shared-prefix run.
        mnpu_trace::counters::add_prefix_share_sims(cfgs.len() as u64);
        let traces: Vec<WorkloadTrace> =
            workloads.iter().zip(&rep_cfg.arch).map(|(&w, a)| self.trace_for(w, a)).collect();

        let variants = &cfgs[1..];
        let mut rep = Simulation::new(rep_cfg, &traces);
        for v in variants {
            rep.add_shadow_config(v);
        }
        // Keep, per variant, the newest checkpoint proven in-lockstep;
        // the pristine initial state always qualifies.
        let mut forks: Vec<SimSnapshot> = (0..variants.len())
            .map(|i| rep.fork_snapshot(i).expect("pristine shadows fork"))
            .collect();
        const CHUNK: u64 = 1 << 16;
        let mut stop = CHUNK;
        let refresh = |rep: &Simulation, forks: &mut Vec<SimSnapshot>| {
            for (i, fork) in forks.iter_mut().enumerate() {
                if let Some(snap) = rep.fork_snapshot(i) {
                    *fork = snap;
                }
            }
        };
        loop {
            match drive(&mut rep, stop) {
                Advance::Drained => break,
                _ => {
                    refresh(&rep, &mut forks);
                    stop = stop.saturating_add(CHUNK);
                }
            }
        }
        refresh(&rep, &mut forks);

        let mut reports = Vec::with_capacity(cfgs.len());
        reports.push(rep.into_report());
        for (vcfg, fork) in variants.iter().zip(&forks) {
            let mut sim = Simulation::new(vcfg, &traces);
            sim.restore(fork).expect("a fork restores into its own variant");
            drive(&mut sim, u64::MAX);
            reports.push(sim.into_report());
        }
        reports
    }

    /// Run a prefix-sharing group through [`Harness::run_reports_shared`]
    /// and memoize each member's per-core cycles exactly as
    /// [`Harness::run_mix`] would.
    pub(crate) fn run_mix_group(&self, cfgs: &[SystemConfig], workloads: &[usize]) {
        let reports = self.run_reports_shared(cfgs, workloads);
        let mut cache = self.cache.lock().expect("cache lock");
        for (cfg, report) in cfgs.iter().zip(&reports) {
            let cycles = report.cores.iter().map(|c| c.cycles).collect();
            cache.entries.insert(Harness::key(cfg, workloads), cycles);
        }
        cache.flush();
    }

    /// Cycles of workload `w` running alone with all of `chip`'s resources
    /// (the `Ideal` baseline).
    pub fn ideal_cycles(&self, chip: &SystemConfig, w: usize) -> u64 {
        let solo = chip.ideal_solo();
        self.run_mix(&solo, &[w])[0]
    }

    /// Per-workload speedups (vs Ideal of `chip`) of a mix run on `chip`.
    pub fn mix_speedups(&self, chip: &SystemConfig, workloads: &[usize]) -> Vec<f64> {
        let cycles = self.run_mix(chip, workloads);
        workloads
            .iter()
            .zip(&cycles)
            .map(|(&w, &c)| self.ideal_cycles(chip, w) as f64 / c as f64)
            .collect()
    }
}

/// Render rows of `(label, values)` as an aligned text table.
pub fn format_table(header: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14}", header.first().copied().unwrap_or("")));
    for h in &header[1..] {
        out.push_str(&format!("{h:>10}"));
    }
    out.push('\n');
    for (label, vals) in rows {
        out.push_str(&format!("{label:<14}"));
        for v in vals {
            out.push_str(&format!("{v:>10.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_distinct() {
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
    }

    #[test]
    fn harness_lists_eight_benchmarks() {
        let h = Harness::new();
        assert_eq!(h.names().len(), 8);
        assert_eq!(h.names()[0], "res");
    }

    #[test]
    fn run_mix_is_cached() {
        std::env::set_var("MNPU_NO_CACHE", "1");
        let h = Harness::new();
        let cfg = Harness::dual(SharingLevel::Static);
        let a = h.run_mix(&cfg, &[6, 6]); // ncf+ncf: fastest mix
        assert!(h.cached(&cfg, &[6, 6]).is_some());
        let b = h.run_mix(&cfg, &[6, 6]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clones_share_one_cache() {
        std::env::set_var("MNPU_NO_CACHE", "1");
        let h = Harness::new();
        let cfg = Harness::dual(SharingLevel::Static);
        let a = h.run_mix(&cfg, &[6, 6]);
        let clone = h.clone();
        assert_eq!(clone.cached(&cfg, &[6, 6]), Some(a));
    }

    #[test]
    fn speedups_are_at_most_one_ish() {
        std::env::set_var("MNPU_NO_CACHE", "1");
        let h = Harness::new();
        let cfg = Harness::dual(SharingLevel::PlusDwt);
        for s in h.mix_speedups(&cfg, &[6, 6]) {
            assert!(s > 0.0 && s <= 1.05, "{s}");
        }
    }

    #[test]
    fn table_formatting() {
        let t = format_table(&["mix", "A", "B"], &[("x".into(), vec![1.0, 2.5])]);
        assert!(t.contains("mix"));
        assert!(t.contains("2.500"));
    }
}
