//! Figures 4–8: the sharing-level study.

use crate::executor::{MixRequest, SweepExecutor};
use crate::harness::Harness;
use mnpu_engine::SharingLevel;
use mnpu_metrics::{fairness, geomean, BoxStats, Cdf};
use mnpu_predict::mapping::multisets;

/// Run every simulation the dual-core sweep needs (all 36 mixes × 4 co-run
/// levels, plus the 8 Ideal solos) on the parallel executor, so the serial
/// aggregation loops below only hit the cache.
fn prefetch_dual(h: &Harness) {
    let n = h.names().len();
    let solo = Harness::dual(SharingLevel::Static).ideal_solo();
    let mut reqs: Vec<MixRequest> = (0..n).map(|w| (solo.clone(), vec![w])).collect();
    for ws in multisets(n, 2) {
        for lvl in SharingLevel::CO_RUN_LEVELS {
            reqs.push((Harness::dual(lvl), ws.clone()));
        }
    }
    SweepExecutor::new().run_mixes(h, &reqs);
}

/// Same for the (sampled) quad-core sweep.
fn prefetch_quad(h: &Harness) {
    let n = h.names().len();
    let solo = Harness::quad(SharingLevel::Static).ideal_solo();
    let mut reqs: Vec<MixRequest> = (0..n).map(|w| (solo.clone(), vec![w])).collect();
    for ws in multisets(n, 4).iter().step_by(Harness::quad_stride()) {
        for lvl in SharingLevel::CO_RUN_LEVELS {
            reqs.push((Harness::quad(lvl), ws.clone()));
        }
    }
    SweepExecutor::new().run_mixes(h, &reqs);
}

/// Result of a dual-core sweep: one row per mix, one column per co-run
/// sharing level (`Static`, `+D`, `+DW`, `+DWT`), plus the overall geomean.
#[derive(Debug, Clone, PartialEq)]
pub struct DualSweep {
    /// `(mix label, metric per sharing level)`.
    pub mixes: Vec<(String, [f64; 4])>,
    /// Geometric mean of each column.
    pub overall: [f64; 4],
}

impl DualSweep {
    fn from_rows(mixes: Vec<(String, [f64; 4])>) -> Self {
        let overall =
            std::array::from_fn(|i| geomean(&mixes.iter().map(|(_, v)| v[i]).collect::<Vec<_>>()));
        DualSweep { mixes, overall }
    }
}

/// Labels of the four co-run sharing levels, in plot order.
pub const LEVEL_LABELS: [&str; 4] = ["Static", "+D", "+DW", "+DWT"];

fn mix_label(h: &Harness, ws: &[usize]) -> String {
    ws.iter().map(|&w| h.names()[w]).collect::<Vec<_>>().join("+")
}

/// Fig. 4: geomean speedup (vs Ideal) of every dual-core mix under each
/// sharing level. All 36 mixes are evaluated.
pub fn fig04_dual_performance(h: &mut Harness) -> DualSweep {
    prefetch_dual(h);
    let mut rows = Vec::new();
    for ws in multisets(8, 2) {
        let label = mix_label(h, &ws);
        let vals = std::array::from_fn(|i| {
            let cfg = Harness::dual(SharingLevel::CO_RUN_LEVELS[i]);
            geomean(&h.mix_speedups(&cfg, &ws))
        });
        rows.push((label, vals));
    }
    DualSweep::from_rows(rows)
}

/// Fig. 6: fairness (Eq. 1) of every dual-core mix under each sharing level.
pub fn fig06_dual_fairness(h: &mut Harness) -> DualSweep {
    prefetch_dual(h);
    let mut rows = Vec::new();
    for ws in multisets(8, 2) {
        let label = mix_label(h, &ws);
        let vals = std::array::from_fn(|i| {
            let cfg = Harness::dual(SharingLevel::CO_RUN_LEVELS[i]);
            let slowdowns: Vec<f64> = h.mix_speedups(&cfg, &ws).iter().map(|s| 1.0 / s).collect();
            fairness(&slowdowns)
        });
        rows.push((label, vals));
    }
    DualSweep::from_rows(rows)
}

/// Result of a quad-core sweep: the metric's CDF per sharing level.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadSweep {
    /// One CDF per level, `LEVEL_LABELS` order.
    pub cdfs: [Cdf; 4],
    /// Mixes actually simulated.
    pub sampled: usize,
    /// Mixes in the full sweep (330).
    pub total: usize,
}

fn quad_sweep(h: &mut Harness, metric: impl Fn(&[f64]) -> f64) -> QuadSweep {
    prefetch_quad(h);
    let all = multisets(8, 4);
    let total = all.len();
    let stride = Harness::quad_stride();
    let sample: Vec<&Vec<usize>> = all.iter().step_by(stride).collect();
    let mut per_level: [Vec<f64>; 4] = Default::default();
    for ws in &sample {
        for (i, lvl) in SharingLevel::CO_RUN_LEVELS.iter().enumerate() {
            let cfg = Harness::quad(*lvl);
            let speedups = h.mix_speedups(&cfg, ws);
            per_level[i].push(metric(&speedups));
        }
    }
    QuadSweep { cdfs: per_level.map(Cdf::new), sampled: sample.len(), total }
}

/// Fig. 5: CDF of per-mix geomean speedup for the quad-core sweep
/// (sampled by [`Harness::quad_stride`] unless `MNPU_FULL=1`).
pub fn fig05_quad_performance_cdf(h: &mut Harness) -> QuadSweep {
    quad_sweep(h, geomean)
}

/// Fig. 7: CDF of per-mix fairness for the quad-core sweep.
pub fn fig07_quad_fairness_cdf(h: &mut Harness) -> QuadSweep {
    quad_sweep(h, |speedups| {
        let slowdowns: Vec<f64> = speedups.iter().map(|s| 1.0 / s).collect();
        fairness(&slowdowns)
    })
}

/// Fig. 8: each workload's speedup distribution under `+DWT` across all
/// eight possible dual-core co-runners.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// `(workload, five-number summary of its speedups)`.
    pub per_workload: Vec<(String, BoxStats)>,
}

/// Compute Fig. 8.
pub fn fig08_sensitivity(h: &mut Harness) -> Sensitivity {
    let cfg = Harness::dual(SharingLevel::PlusDwt);
    let n = h.names().len();
    let mut per_workload = Vec::new();
    for w in 0..n {
        let mut speedups = Vec::new();
        for co in 0..n {
            // Keep the canonical (sorted) mix so cache entries are shared
            // with Fig. 4; read the position of `w` in it.
            let ws = if w <= co { vec![w, co] } else { vec![co, w] };
            let pos = if w <= co { 0 } else { 1 };
            speedups.push(h.mix_speedups(&cfg, &ws)[pos]);
        }
        per_workload.push((h.names()[w].to_string(), BoxStats::from_sample(&speedups)));
    }
    Sensitivity { per_workload }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_labels_match_paper() {
        assert_eq!(LEVEL_LABELS, ["Static", "+D", "+DW", "+DWT"]);
    }

    #[test]
    fn dual_sweep_overall_is_columnwise_geomean() {
        let s = DualSweep::from_rows(vec![
            ("a".into(), [1.0, 2.0, 3.0, 4.0]),
            ("b".into(), [4.0, 2.0, 3.0, 1.0]),
        ]);
        assert!((s.overall[0] - 2.0).abs() < 1e-12);
        assert!((s.overall[1] - 2.0).abs() < 1e-12);
        assert!((s.overall[3] - 2.0).abs() < 1e-12);
    }
}
