//! One function per paper figure; bench binaries print the results.
//!
//! | Figure | Function |
//! |--------|----------|
//! | Fig. 2b | [`bandwidth::fig02_burstiness`] |
//! | Fig. 4 | [`sharing::fig04_dual_performance`] |
//! | Fig. 5 | [`sharing::fig05_quad_performance_cdf`] |
//! | Fig. 6 | [`sharing::fig06_dual_fairness`] |
//! | Fig. 7 | [`sharing::fig07_quad_fairness_cdf`] |
//! | Fig. 8 | [`sharing::fig08_sensitivity`] |
//! | Fig. 9 | [`bandwidth::fig09_bw_partition_performance`] |
//! | Fig. 10 | [`bandwidth::fig10_bw_partition_fairness`] |
//! | Fig. 11 | [`bandwidth::fig11_bandwidth_sweep`] |
//! | Fig. 12 | [`bandwidth::fig12_bw_timeline`] |
//! | Fig. 13 | [`translation::fig13_ptw_partition_performance`] |
//! | Fig. 14 | [`translation::fig14_ptw_partition_fairness`] |
//! | Fig. 15 | [`translation::fig15_page_size_single`] |
//! | Fig. 16 | [`translation::fig16_page_size_multi`] |
//! | Fig. 17 | [`mapping::fig17_mapping_performance`] |
//! | Fig. 18 | [`mapping::fig18_mapping_fairness`] |

pub mod bandwidth;
pub mod mapping;
pub mod sharing;
pub mod translation;
