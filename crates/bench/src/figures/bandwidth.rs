//! Figures 2b and 9–12: memory-bandwidth behavior.

use crate::harness::Harness;
use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_metrics::{fairness, geomean, moving_average};
use mnpu_model::{zoo, Scale};
use mnpu_predict::mapping::multisets;

/// Fig. 2b data: the moving average (over a 1000-cycle window) of DRAM
/// requests issued by a single-core NPU running NCF.
#[derive(Debug, Clone, PartialEq)]
pub struct Burstiness {
    /// Window length in cycles.
    pub window: u64,
    /// Smoothed requests-per-cycle series, one point per window.
    pub series: Vec<f64>,
    /// Peak of the smoothed series.
    pub peak: f64,
    /// Mean of the smoothed series.
    pub mean: f64,
}

/// Compute Fig. 2b: NCF's bursty request pattern on a single core.
pub fn fig02_burstiness() -> Burstiness {
    let mut cfg = SystemConfig::bench(1, SharingLevel::Ideal);
    let window = 100;
    cfg.trace_window = Some(window);
    let r = Simulation::execute_networks(&cfg, &[zoo::ncf(Scale::Bench)]);
    let trace = r.bandwidth_trace.expect("trace enabled");
    // Requests per cycle in each 100-cycle window, then a 10-window moving
    // average = the paper's 1000-cycle smoothing.
    let per_window: Vec<f64> =
        trace.core_series(0).iter().map(|&bytes| bytes as f64 / 64.0 / window as f64).collect();
    let series = moving_average(&per_window, 10);
    let peak = series.iter().cloned().fold(0.0, f64::max);
    let mean = series.iter().sum::<f64>() / series.len().max(1) as f64;
    Burstiness { window, series, peak, mean }
}

/// The five static channel splits of the dual-core Figs. 9/10, over the
/// chip's 8 channels, plus labels for the derived columns.
pub const BW_PARTITIONS: [[usize; 2]; 5] = [[1, 7], [2, 6], [4, 4], [6, 2], [7, 1]];

/// Column labels for [`BwPartitionSweep`]: five ratios, the per-mix best
/// static choice, and dynamic sharing.
pub const BW_LABELS: [&str; 7] = ["1:7", "2:6", "4:4", "6:2", "7:1", "StaticBest", "Dynamic"];

/// Result of the bandwidth-partitioning sweep (translation disabled, as in
/// the paper's §4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct BwPartitionSweep {
    /// `(mix, metric per BW_LABELS column)`.
    pub mixes: Vec<(String, [f64; 7])>,
    /// Column-wise geomean.
    pub overall: [f64; 7],
}

fn bw_configs() -> ([SystemConfig; 5], SystemConfig) {
    let statics = BW_PARTITIONS.map(|p| {
        Harness::dual(SharingLevel::Static).with_channel_partition(p.to_vec()).without_translation()
    });
    let dynamic = Harness::dual(SharingLevel::PlusD).without_translation();
    (statics, dynamic)
}

fn bw_sweep(
    h: &mut Harness,
    metric: impl Fn(&[f64]) -> f64,
    best_by_perf: bool,
) -> BwPartitionSweep {
    let (statics, dynamic) = bw_configs();
    let mut mixes = Vec::new();
    for ws in multisets(8, 2) {
        let label: String = ws.iter().map(|&w| h.names()[w]).collect::<Vec<_>>().join("+");
        let mut vals = [0.0f64; 7];
        let mut best = f64::NEG_INFINITY;
        let mut best_metric = 0.0;
        for (i, cfg) in statics.iter().enumerate() {
            let speedups = h.mix_speedups(cfg, &ws);
            vals[i] = metric(&speedups);
            // "Static Best" picks the best partition *by performance*; the
            // fairness figure reports the fairness of that same choice.
            let perf = if best_by_perf { geomean(&speedups) } else { vals[i] };
            if perf > best {
                best = perf;
                best_metric = vals[i];
            }
        }
        vals[5] = best_metric;
        vals[6] = metric(&h.mix_speedups(&dynamic, &ws));
        mixes.push((label, vals));
    }
    let overall =
        std::array::from_fn(|i| geomean(&mixes.iter().map(|(_, v)| v[i]).collect::<Vec<_>>()));
    BwPartitionSweep { mixes, overall }
}

/// Fig. 9: geomean performance of each bandwidth-partitioning scheme,
/// normalized to Ideal (translation disabled throughout).
pub fn fig09_bw_partition_performance(h: &mut Harness) -> BwPartitionSweep {
    bw_sweep(h, geomean, true)
}

/// Fig. 10: fairness of each bandwidth-partitioning scheme.
pub fn fig10_bw_partition_fairness(h: &mut Harness) -> BwPartitionSweep {
    bw_sweep(
        h,
        |s| {
            let slowdowns: Vec<f64> = s.iter().map(|x| 1.0 / x).collect();
            fairness(&slowdowns)
        },
        true,
    )
}

/// Fig. 11 data: per-workload speedup as single-core DRAM bandwidth grows,
/// normalized to the smallest configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthSweep {
    /// Channel counts swept (each channel is 8 GB/s at bench scale).
    pub channels: Vec<usize>,
    /// `(workload, speedup per channel count)`.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Compute Fig. 11: single-core speedup vs DRAM bandwidth.
pub fn fig11_bandwidth_sweep(h: &mut Harness) -> BandwidthSweep {
    let channels = vec![1usize, 2, 4, 8, 16];
    let mut series = Vec::new();
    for w in 0..h.names().len() {
        let mut cycles = Vec::new();
        for &ch in &channels {
            let mut cfg = SystemConfig::bench(1, SharingLevel::Ideal);
            cfg.channels_per_core = ch;
            cycles.push(h.run_mix(&cfg, &[w])[0] as f64);
        }
        let base = cycles[0];
        series.push((h.names()[w].to_string(), cycles.iter().map(|c| base / c).collect()));
    }
    BandwidthSweep { channels, series }
}

/// Fig. 12 data: bandwidth-utilization timelines of ds2 and gpt2 running
/// alone on the dual-core Ideal configuration, plus their sum.
#[derive(Debug, Clone, PartialEq)]
pub struct BwTimeline {
    /// Window length in DRAM cycles.
    pub window: u64,
    /// ds2's utilization per window, normalized to the chip peak.
    pub ds2: Vec<f64>,
    /// gpt2's utilization per window.
    pub gpt2: Vec<f64>,
    /// Element-wise sum (the co-run demand the paper plots).
    pub sum: Vec<f64>,
    /// Fraction of windows where a single workload alone needs more than
    /// half the peak (the paper's `y >= 0.5` argument against 4:4 splits).
    pub frac_above_half: f64,
    /// Fraction of windows where the summed demand exceeds the peak.
    pub frac_sum_above_peak: f64,
}

/// Compute Fig. 12.
pub fn fig12_bw_timeline() -> BwTimeline {
    let window = 2000;
    let run = |name: &str| {
        let mut cfg = Harness::dual(SharingLevel::PlusDwt).ideal_solo();
        cfg.trace_window = Some(window);
        let net = zoo::by_name(name, Scale::Bench).expect("known benchmark");
        let r = Simulation::execute_networks(&cfg, &[net]);
        let peak = {
            let mut d = cfg.dram.clone();
            d.channels = cfg.total_channels();
            d.channel_bytes_per_cycle() * d.channels as f64
        };
        r.bandwidth_trace.expect("trace enabled").normalized_series(0, peak)
    };
    let ds2 = run("ds2");
    let gpt2 = run("gpt2");
    let n = ds2.len().max(gpt2.len());
    let at = |v: &Vec<f64>, i: usize| v.get(i).copied().unwrap_or(0.0);
    let sum: Vec<f64> = (0..n).map(|i| at(&ds2, i) + at(&gpt2, i)).collect();
    let above_half = ds2.iter().chain(&gpt2).filter(|&&u| u >= 0.5).count() as f64
        / (ds2.len() + gpt2.len()) as f64;
    let sum_above = sum.iter().filter(|&&u| u > 1.0).count() as f64 / sum.len().max(1) as f64;
    BwTimeline {
        window,
        ds2,
        gpt2,
        sum,
        frac_above_half: above_half,
        frac_sum_above_peak: sum_above,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burstiness_has_peaks_above_mean() {
        let b = fig02_burstiness();
        assert!(!b.series.is_empty());
        assert!(b.peak > b.mean * 1.5, "bursty traffic: peak {} vs mean {}", b.peak, b.mean);
    }

    #[test]
    fn bw_partitions_cover_eight_channels() {
        for p in BW_PARTITIONS {
            assert_eq!(p.iter().sum::<usize>(), 8);
        }
    }
}
