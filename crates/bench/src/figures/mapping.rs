//! Figures 17–18: the co-runner mapping study (§4.6).

use crate::harness::Harness;
use mnpu_engine::SharingLevel;
use mnpu_metrics::{fairness, Cdf};
use mnpu_predict::mapping::{multisets, study_multiset};
use mnpu_predict::{SlowdownModel, WorkloadProfile};

/// Everything needed to evaluate one multiset mapping: the measured and
/// predicted pairwise slowdown tables over the eight benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct PairTables {
    n: usize,
    /// `actual[i][j]` = measured slowdown of *i* when paired with *j*.
    actual: Vec<Vec<f64>>,
    /// `predicted[i][j]` = model-predicted slowdown of *i* next to *j*.
    predicted: Vec<Vec<f64>>,
}

impl PairTables {
    /// Simulate all 36 unordered benchmark pairs under dual-core `+DWT`
    /// (reusing the Fig. 4 cache), profile the benchmarks, and train the
    /// slowdown model on random networks.
    pub fn build(h: &mut Harness) -> Self {
        let chip = Harness::dual(SharingLevel::PlusDwt);
        let n = h.names().len();

        // Fan the 36 pair simulations (and the Ideal solos they normalize
        // against) out across the sweep executor before the serial
        // aggregation below.
        let solo = chip.ideal_solo();
        let mut reqs: Vec<crate::executor::MixRequest> =
            (0..n).map(|w| (solo.clone(), vec![w])).collect();
        for i in 0..n {
            for j in i..n {
                reqs.push((chip.clone(), vec![i, j]));
            }
        }
        crate::executor::SweepExecutor::new().run_mixes(h, &reqs);

        let mut actual = vec![vec![0.0; n]; n];
        // Each pair fills the (i, j) and (j, i) cells at once, so the
        // indices cannot be replaced by iterators.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in i..n {
                let speedups = h.mix_speedups(&chip, &[i, j]);
                actual[i][j] = 1.0 / speedups[0];
                actual[j][i] = 1.0 / speedups[1];
            }
        }

        let profiles: Vec<WorkloadProfile> =
            h.networks().to_vec().iter().map(|net| WorkloadProfile::measure(&chip, net)).collect();
        let model = SlowdownModel::train_on_random_networks(&chip, 10, 20, 2023);
        let mut predicted = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                predicted[i][j] = model.predict_slowdown(&profiles[i], &profiles[j]);
            }
        }
        PairTables { n, actual, predicted }
    }

    /// Measured `(slowdown_i, slowdown_j)` of pairing benchmarks `i`, `j`.
    pub fn actual(&self, i: usize, j: usize) -> (f64, f64) {
        (self.actual[i][j], self.actual[j][i])
    }

    /// Predicted `(slowdown_i, slowdown_j)`.
    pub fn predicted(&self, i: usize, j: usize) -> (f64, f64) {
        (self.predicted[i][j], self.predicted[j][i])
    }

    /// Number of benchmarks covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true; tables always cover the zoo.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Result of the mapping study over the eight-workload multisets.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingStudy {
    /// CDF of the predictor's score normalized to random assignment.
    pub prediction: Cdf,
    /// CDF of the oracle's score normalized to random assignment.
    pub oracle: Cdf,
    /// CDF of the worst assignment's score normalized to random.
    pub worst: Cdf,
    /// Fraction of multisets where the predictor beat random assignment.
    pub frac_better_than_random: f64,
    /// Multisets evaluated (6435 with `MNPU_FULL=1`).
    pub sampled: usize,
    /// Total multisets in the full study.
    pub total: usize,
}

fn run_study(tables: &PairTables, score: &dyn Fn(&[f64]) -> f64) -> MappingStudy {
    let all = multisets(tables.len(), 8);
    let total = all.len();
    let stride = if Harness::full_sweeps() { 1 } else { 10 };
    let sample: Vec<&Vec<usize>> = all.iter().step_by(stride).collect();

    let mut pred = Vec::with_capacity(sample.len());
    let mut oracle = Vec::with_capacity(sample.len());
    let mut worst = Vec::with_capacity(sample.len());
    let mut better = 0usize;
    for ws in &sample {
        let out =
            study_multiset(ws, &|i, j| tables.actual(i, j), &|i, j| tables.predicted(i, j), score);
        pred.push(out.chosen / out.expected);
        oracle.push(out.oracle / out.expected);
        worst.push(out.worst / out.expected);
        if out.chosen > out.expected {
            better += 1;
        }
    }
    MappingStudy {
        prediction: Cdf::new(pred),
        oracle: Cdf::new(oracle),
        worst: Cdf::new(worst),
        frac_better_than_random: better as f64 / sample.len() as f64,
        sampled: sample.len(),
        total,
    }
}

/// Fig. 17: CDF of mapped-system *performance* (geomean speedup) for the
/// prediction model vs the oracle, worst, and random assignments.
pub fn fig17_mapping_performance(tables: &PairTables) -> MappingStudy {
    run_study(tables, &|slowdowns| {
        let log: f64 = slowdowns.iter().map(|s| (1.0 / s).ln()).sum();
        (log / slowdowns.len() as f64).exp()
    })
}

/// Fig. 18: CDF of mapped-system *fairness* for the same four schedulers.
pub fn fig18_mapping_fairness(tables: &PairTables) -> MappingStudy {
    run_study(tables, &|slowdowns| fairness(slowdowns))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_tables() -> PairTables {
        let n = 8;
        let mut actual = vec![vec![0.0; n]; n];
        let mut predicted = vec![vec![0.0; n]; n];
        for (i, row) in actual.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = 1.0 + ((i * 13 + j * 7) % 10) as f64 / 10.0;
            }
        }
        for (i, row) in predicted.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                // A noisy but correlated predictor.
                *v = actual[i][j] + ((i + j) % 3) as f64 * 0.05;
            }
        }
        PairTables { n, actual, predicted }
    }

    #[test]
    fn oracle_dominates_prediction_dominates_worst() {
        let t = toy_tables();
        let s = fig17_mapping_performance(&t);
        for q in [0.1, 0.5, 0.9] {
            assert!(s.oracle.quantile(q) >= s.prediction.quantile(q) - 1e-9);
            assert!(s.prediction.quantile(q) >= s.worst.quantile(q) - 1e-9);
        }
        assert!(s.sampled > 0 && s.total == 6435);
    }

    #[test]
    fn correlated_predictor_beats_random_often() {
        let t = toy_tables();
        let s = fig17_mapping_performance(&t);
        assert!(s.frac_better_than_random > 0.4, "{}", s.frac_better_than_random);
    }

    #[test]
    fn fairness_study_produces_valid_cdfs() {
        let t = toy_tables();
        let s = fig18_mapping_fairness(&t);
        assert_eq!(s.prediction.len(), s.oracle.len());
        assert!(s.oracle.quantile(0.5) >= 1.0 - 1e-9, "oracle at least random");
    }
}
