//! Figures 13–16: page-table-walker partitioning and page-size scaling.

use crate::harness::Harness;
use mnpu_engine::SharingLevel;
use mnpu_metrics::{fairness, geomean};
use mnpu_model::zoo;
use mnpu_predict::mapping::multisets;

/// The static walker splits of Figs. 13/14 over the dual-core chip's
/// 4 walkers (the paper's eighths of 16 walkers become quarters at bench
/// scale; see EXPERIMENTS.md).
pub const PTW_PARTITIONS: [[usize; 2]; 3] = [[1, 3], [2, 2], [3, 1]];

/// Column labels: static splits plus the dynamic shared pool (`+DW`).
pub const PTW_LABELS: [&str; 4] = ["1:3", "2:2", "3:1", "Dynamic"];

/// Result of the PTW-partitioning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PtwPartitionSweep {
    /// `(mix, metric per PTW_LABELS column)`.
    pub mixes: Vec<(String, [f64; 4])>,
    /// Column-wise geomean.
    pub overall: [f64; 4],
}

fn ptw_sweep(h: &mut Harness, metric: impl Fn(&[f64]) -> f64) -> PtwPartitionSweep {
    // DRAM is shared in all columns (as in +D/+DW); only the walker policy
    // varies, isolating the PTW effect like the paper's §4.4.1.
    let statics =
        PTW_PARTITIONS.map(|p| Harness::dual(SharingLevel::PlusD).with_ptw_partition(p.to_vec()));
    let dynamic = Harness::dual(SharingLevel::PlusDw);
    let mut mixes = Vec::new();
    for ws in multisets(8, 2) {
        let label: String = ws.iter().map(|&w| h.names()[w]).collect::<Vec<_>>().join("+");
        let mut vals = [0.0f64; 4];
        for (i, cfg) in statics.iter().enumerate() {
            vals[i] = metric(&h.mix_speedups(cfg, &ws));
        }
        vals[3] = metric(&h.mix_speedups(&dynamic, &ws));
        mixes.push((label, vals));
    }
    let overall =
        std::array::from_fn(|i| geomean(&mixes.iter().map(|(_, v)| v[i]).collect::<Vec<_>>()));
    PtwPartitionSweep { mixes, overall }
}

/// Fig. 13: geomean performance of each walker-partitioning scheme in the
/// dual-core chip, normalized to Ideal.
pub fn fig13_ptw_partition_performance(h: &mut Harness) -> PtwPartitionSweep {
    ptw_sweep(h, geomean)
}

/// Fig. 14: fairness of each walker-partitioning scheme.
pub fn fig14_ptw_partition_fairness(h: &mut Harness) -> PtwPartitionSweep {
    ptw_sweep(h, |s| {
        let slowdowns: Vec<f64> = s.iter().map(|x| 1.0 / x).collect();
        fairness(&slowdowns)
    })
}

/// The page sizes of §4.5, bytes.
pub const PAGE_SIZES: [u64; 3] = [4096, 65536, 1 << 20];

/// Fig. 15 data: single-core speedup of large pages over 4 KB pages.
#[derive(Debug, Clone, PartialEq)]
pub struct PageSizeSingle {
    /// `(workload, speedup of 64 KB over 4 KB, speedup of 1 MB over 4 KB)`.
    pub rows: Vec<(String, f64, f64)>,
    /// Geomeans of the two columns.
    pub overall: (f64, f64),
}

/// Compute Fig. 15.
pub fn fig15_page_size_single(h: &mut Harness) -> PageSizeSingle {
    let mut rows = Vec::new();
    for w in 0..h.names().len() {
        let cycles: Vec<f64> = PAGE_SIZES
            .iter()
            .map(|&p| {
                let cfg = Harness::dual(SharingLevel::PlusDwt).ideal_solo().with_page_size(p);
                h.run_mix(&cfg, &[w])[0] as f64
            })
            .collect();
        rows.push((h.names()[w].to_string(), cycles[0] / cycles[1], cycles[0] / cycles[2]));
    }
    let overall = (
        geomean(&rows.iter().map(|r| r.1).collect::<Vec<_>>()),
        geomean(&rows.iter().map(|r| r.2).collect::<Vec<_>>()),
    );
    PageSizeSingle { rows, overall }
}

/// Fig. 16 data: page-size scaling for dual- and quad-core chips
/// under `+DWT`.
#[derive(Debug, Clone, PartialEq)]
pub struct PageSizeMulti {
    /// `(core count, perf of 64K and 1M vs 4K, fairness at 4K/64K/1M)`.
    pub rows: Vec<(usize, [f64; 2], [f64; 3])>,
    /// Dual-core mixes simulated.
    pub dual_mixes: usize,
    /// Quad-core mixes simulated.
    pub quad_mixes: usize,
}

/// Compute Fig. 16. The quad sweep is sampled by [`Harness::quad_stride`].
pub fn fig16_page_size_multi(h: &mut Harness) -> PageSizeMulti {
    let mut rows = Vec::new();
    let mut counts = (0usize, 0usize);
    for (cores, stride) in [(2usize, 3usize), (4, Harness::quad_stride() * 3)] {
        let mix_list: Vec<Vec<usize>> = multisets(8, cores).into_iter().step_by(stride).collect();
        // Per page size: collect per-workload speedups vs 4K, and fairness
        // vs the Ideal of the same page size.
        let mut perf_ratio = [Vec::new(), Vec::new()];
        let mut fair = [Vec::new(), Vec::new(), Vec::new()];
        for ws in &mix_list {
            let mut cycles_by_page = Vec::new();
            for (pi, &p) in PAGE_SIZES.iter().enumerate() {
                let cfg = if cores == 2 {
                    Harness::dual(SharingLevel::PlusDwt).with_page_size(p)
                } else {
                    Harness::quad(SharingLevel::PlusDwt).with_page_size(p)
                };
                let speedups = h.mix_speedups(&cfg, ws);
                let slowdowns: Vec<f64> = speedups.iter().map(|s| 1.0 / s).collect();
                fair[pi].push(fairness(&slowdowns));
                cycles_by_page.push(h.run_mix(&cfg, ws));
            }
            // `core` indexes three parallel rows of `cycles_by_page`.
            #[allow(clippy::needless_range_loop)]
            for core in 0..cores {
                for big in 0..2 {
                    perf_ratio[big].push(
                        cycles_by_page[0][core] as f64 / cycles_by_page[big + 1][core] as f64,
                    );
                }
            }
        }
        if cores == 2 {
            counts.0 = mix_list.len();
        } else {
            counts.1 = mix_list.len();
        }
        rows.push((
            cores,
            [geomean(&perf_ratio[0]), geomean(&perf_ratio[1])],
            [geomean(&fair[0]), geomean(&fair[1]), geomean(&fair[2])],
        ));
    }
    PageSizeMulti { rows, dual_mixes: counts.0, quad_mixes: counts.1 }
}

/// Convenience: the single-core page-size sweep for one named workload
/// (used by the `page_size_study` example).
///
/// # Panics
///
/// Panics if `name` is not one of the eight benchmarks.
pub fn page_cycles_for(h: &mut Harness, name: &str) -> Vec<(u64, u64)> {
    let idx = zoo::MODEL_NAMES
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    PAGE_SIZES
        .iter()
        .map(|&p| {
            let cfg = Harness::dual(SharingLevel::PlusDwt).ideal_solo().with_page_size(p);
            (p, h.run_mix(&cfg, &[idx])[0])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptw_partitions_cover_four_walkers() {
        for p in PTW_PARTITIONS {
            assert_eq!(p.iter().sum::<usize>(), 4);
        }
    }

    #[test]
    fn page_sizes_match_arm64_granules() {
        assert_eq!(PAGE_SIZES, [4096, 65536, 1048576]);
    }
}
