//! Bench target regenerating the paper's Fig. 8: each workload's
//! performance distribution under +DWT across all dual-core co-runners.

use mnpu_bench::figures::sharing::fig08_sensitivity;
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig08_sensitivity(&mut h);
    println!("Fig. 8 — per-workload +DWT speedup distribution over co-runners");
    println!(
        "{:<8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "wl", "min", "q1", "median", "q3", "max", "range"
    );
    for (name, b) in &r.per_workload {
        println!(
            "{:<8}{:>8.3}{:>8.3}{:>8.3}{:>8.3}{:>8.3}{:>8.3}",
            name,
            b.min,
            b.q1,
            b.median,
            b.q3,
            b.max,
            b.range()
        );
    }
}
