//! Bench target regenerating the paper's Fig. 12: DRAM bandwidth
//! utilization over time for ds2 and gpt2 alone (dual-core Ideal), and
//! their sum — the burst-overlap argument for dynamic sharing.

use mnpu_bench::figures::bandwidth::fig12_bw_timeline;

fn main() {
    let r = fig12_bw_timeline();
    println!("Fig. 12 — bandwidth utilization timeline (window = {} cycles)", r.window);
    println!(
        "fraction of windows with single-workload demand >= 0.5 peak: {:.2}",
        r.frac_above_half
    );
    println!("fraction of windows with summed demand > peak: {:.2}", r.frac_sum_above_peak);
    println!("{:>10}{:>8}{:>8}{:>8}", "cycle", "ds2", "gpt2", "sum");
    let n = r.sum.len();
    let step = (n / 50).max(1);
    for i in (0..n).step_by(step) {
        let at = |v: &Vec<f64>| v.get(i).copied().unwrap_or(0.0);
        println!(
            "{:>10}{:>8.3}{:>8.3}{:>8.3}",
            i as u64 * r.window,
            at(&r.ds2),
            at(&r.gpt2),
            r.sum[i]
        );
    }
}
