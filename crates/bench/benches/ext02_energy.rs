//! Extension experiment: chip energy per sharing level.
//!
//! The DRAMsim3 substrate the paper links is "thermal-capable"; our rewrite
//! carries an energy model instead. This bench reports where the energy
//! goes (MACs, SPM, DRAM activate/transfer/refresh/background) for one
//! representative mix under each sharing level — sharing reduces *energy*
//! mostly through shorter runtimes (less background/standby energy).

use mnpu_engine::{EnergyModel, SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};

fn main() {
    let nets = [zoo::deepspeech2(Scale::Bench), zoo::dlrm(Scale::Bench)];
    let model = EnergyModel::default();
    println!("Extension 2 — energy breakdown of the ds2+dlrm dual-core mix (nJ)");
    println!(
        "{:<8}{:>12}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}{:>12}",
        "level",
        "cycles",
        "compute",
        "spm",
        "dram act",
        "dram r/w",
        "refresh",
        "background",
        "total"
    );
    for level in SharingLevel::CO_RUN_LEVELS {
        let cfg = SystemConfig::bench(2, level);
        let r = Simulation::execute_networks(&cfg, &nets);
        let e = r.estimate_energy(&cfg, &model);
        println!(
            "{:<8}{:>12}{:>10.0}{:>10.0}{:>10.0}{:>10.0}{:>12.0}{:>12.0}{:>12.0}",
            level.label(),
            r.total_cycles,
            e.compute_nj.iter().sum::<f64>(),
            e.spm_nj.iter().sum::<f64>(),
            e.dram.activate_nj,
            e.dram.read_nj + e.dram.write_nj,
            e.dram.refresh_nj,
            e.dram.background_nj,
            e.total_nj(),
        );
    }
    println!("\n(compute/SPM/transfer energy is workload-fixed; sharing saves the");
    println!(" time-proportional background and refresh energy)");
}
