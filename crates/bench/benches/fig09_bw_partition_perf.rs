//! Bench target regenerating the paper's Fig. 9: DRAM bandwidth partitioning, performance (translation off)

use mnpu_bench::figures::bandwidth::{fig09_bw_partition_performance, BW_LABELS};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig09_bw_partition_performance(&mut h);
    println!("Fig. 9 — DRAM bandwidth partitioning, performance (translation off)");
    print!("{:<14}", "mix");
    for l in BW_LABELS {
        print!("{:>11}", l);
    }
    println!();
    for (label, v) in &r.mixes {
        print!("{:<14}", label);
        for x in v {
            print!("{:>11.3}", x);
        }
        println!();
    }
    print!("{:<14}", "geomean");
    for x in &r.overall {
        print!("{:>11.3}", x);
    }
    println!();
}
