//! Criterion micro-benchmarks of the MMU: TLB lookup throughput and walk
//! processing, plus the walk-coalescing ablation (DESIGN.md decision 3).

use criterion::{criterion_group, criterion_main, Criterion};
use mnpu_mmu::{Mmu, MmuConfig, Tlb, WalkStart, WalkStep};
use std::hint::black_box;

fn bench_mmu(c: &mut Criterion) {
    c.bench_function("tlb_lookup_hit_stream", |b| {
        let mut tlb = Tlb::new(2048, 8);
        for vpn in 0..2048 {
            tlb.insert(0, vpn);
        }
        let mut vpn = 0u64;
        b.iter(|| {
            vpn = (vpn + 1) % 1024;
            black_box(tlb.lookup(0, black_box(vpn)))
        })
    });

    c.bench_function("full_walk_4level", |b| {
        let mut mmu = Mmu::new(MmuConfig::neummu(4096), 1, &[0]);
        let mut vpn = 0u64;
        b.iter(|| {
            vpn += 1;
            let WalkStart::Started { walk, pt_addr } = mmu.start_or_join_walk(0, vpn) else {
                unreachable!("walker always free in this loop")
            };
            black_box(pt_addr);
            while let WalkStep::Access(a) = mmu.advance_walk(walk) {
                black_box(a);
            }
        })
    });

    // Ablation: coalescing burst misses to one page vs walking per miss.
    c.bench_function("coalesced_burst_64_misses", |b| {
        let mut vpn = 0u64;
        b.iter(|| {
            let mut mmu = Mmu::new(MmuConfig::neummu(4096), 1, &[0]);
            vpn += 1;
            let WalkStart::Started { walk, .. } = mmu.start_or_join_walk(0, vpn) else {
                unreachable!()
            };
            for _ in 0..63 {
                assert_eq!(mmu.start_or_join_walk(0, vpn), WalkStart::Joined(walk));
            }
            while let WalkStep::Access(_) = mmu.advance_walk(walk) {}
            black_box(mmu.stats(0).coalesced)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mmu
}
criterion_main!(benches);
