//! Bench target regenerating the paper's Fig. 14: PTW partitioning, fairness

use mnpu_bench::figures::translation::{fig14_ptw_partition_fairness, PTW_LABELS};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig14_ptw_partition_fairness(&mut h);
    println!("Fig. 14 — PTW partitioning, fairness");
    print!("{:<14}", "mix");
    for l in PTW_LABELS {
        print!("{:>10}", l);
    }
    println!();
    for (label, v) in &r.mixes {
        print!("{:<14}", label);
        for x in v {
            print!("{:>10.3}", x);
        }
        println!();
    }
    print!("{:<14}", "geomean");
    for x in &r.overall {
        print!("{:>10.3}", x);
    }
    println!();
}
