//! System-level ablations of the design decisions called out in DESIGN.md:
//!
//! 1. DRAM scheduling policy (FR-FCFS vs strict FCFS);
//! 2. address mapping (BlockInterleaved vs RowInterleaved);
//! 3. page-table-walk coalescing on/off.
//!
//! Each ablation runs a representative dual-core mix (+DWT) and reports the
//! per-core slowdown relative to the default configuration.

use mnpu_dram::{AddressMapping, SchedPolicy};
use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};

fn run(cfg: &SystemConfig) -> Vec<u64> {
    let nets = [zoo::selfish_rnn(Scale::Bench), zoo::dlrm(Scale::Bench)];
    Simulation::execute_networks(cfg, &nets).cores.iter().map(|c| c.cycles).collect()
}

fn report(label: &str, base: &[u64], variant: &[u64]) {
    print!("{label:<28}");
    for (b, v) in base.iter().zip(variant) {
        print!("{:>10.3}", *v as f64 / *b as f64);
    }
    println!();
}

fn main() {
    println!("Ablations on the sfrnn+dlrm dual-core +DWT mix");
    println!("{:<28}{:>10}{:>10}", "variant (slowdown vs base)", "sfrnn", "dlrm");

    let base_cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let base = run(&base_cfg);
    report("baseline", &base, &base);

    let mut fcfs = base_cfg.clone();
    fcfs.dram.policy = SchedPolicy::Fcfs;
    report("dram: strict FCFS", &base, &run(&fcfs));

    let mut rowmap = base_cfg.clone();
    rowmap.dram.mapping = AddressMapping::RowInterleaved;
    report("dram: row-interleaved map", &base, &run(&rowmap));

    let mut nocoalesce = base_cfg.clone();
    nocoalesce.mmu.coalesce_walks = false;
    report("mmu: no walk coalescing", &base, &run(&nocoalesce));

    println!("\n(values > 1.0 mean the ablated design is slower — i.e. the");
    println!(" default design decision earns its keep on this mix)");
}
