//! Bench target regenerating the paper's Fig. 15: single-core speedup of
//! 64 KB and 1 MB pages over 4 KB pages.

use mnpu_bench::figures::translation::fig15_page_size_single;
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig15_page_size_single(&mut h);
    println!("Fig. 15 — page-size speedup over 4KB (single core)");
    println!("{:<8}{:>10}{:>10}", "wl", "64KB", "1MB");
    for (name, s64, s1m) in &r.rows {
        println!("{:<8}{:>10.3}{:>10.3}", name, s64, s1m);
    }
    println!("{:<8}{:>10.3}{:>10.3}", "geomean", r.overall.0, r.overall.1);
}
