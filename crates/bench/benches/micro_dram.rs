//! Criterion micro-benchmarks of the DRAM model: scheduler throughput for
//! streaming and random access, and the BlockInterleaved-vs-RowInterleaved
//! mapping ablation (DESIGN.md decision 1).

use criterion::{criterion_group, criterion_main, Criterion};
use mnpu_dram::{AddressMapping, Dram, DramConfig};
use std::hint::black_box;

fn drive(dram: &mut Dram, addrs: &[u64]) -> u64 {
    let mut now = 0;
    let mut done = 0;
    let mut it = addrs.iter();
    let mut next_addr = it.next().copied();
    while done < addrs.len() {
        while let Some(a) = next_addr {
            if dram.try_enqueue(now, 0, a, false, a).is_err() {
                break;
            }
            next_addr = it.next().copied();
        }
        done += dram.advance(now).len();
        if done < addrs.len() {
            now = dram.next_event().expect("pending work");
        }
    }
    now
}

fn bench_dram(c: &mut Criterion) {
    let streaming: Vec<u64> = (0..4096u64).map(|i| i * 64).collect();
    let random: Vec<u64> =
        (0..4096u64).map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15)) % (1 << 30) / 64 * 64).collect();

    c.bench_function("dram_streaming_4k_txns", |b| {
        b.iter(|| {
            let mut d = Dram::new(DramConfig::hbm2(8));
            black_box(drive(&mut d, black_box(&streaming)))
        })
    });
    c.bench_function("dram_random_4k_txns", |b| {
        b.iter(|| {
            let mut d = Dram::new(DramConfig::hbm2(8));
            black_box(drive(&mut d, black_box(&random)))
        })
    });
    // Ablation: mapping scheme. RowInterleaved keeps rows local to one
    // channel (fewer ACTs for streaming within a row but less parallelism).
    for mapping in [AddressMapping::BlockInterleaved, AddressMapping::RowInterleaved] {
        c.bench_function(&format!("dram_streaming_{mapping:?}"), |b| {
            b.iter(|| {
                let mut cfg = DramConfig::hbm2(8);
                cfg.mapping = mapping;
                let mut d = Dram::new(cfg);
                black_box(drive(&mut d, black_box(&streaming)))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dram
}
criterion_main!(benches);
