//! Bench target regenerating the paper's Fig. 16: multi-core page-size
//! scaling (performance vs 4 KB; fairness vs Ideal) under +DWT.

use mnpu_bench::figures::translation::fig16_page_size_multi;
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig16_page_size_multi(&mut h);
    println!(
        "Fig. 16 — page-size scaling under +DWT ({} dual / {} quad mixes)",
        r.dual_mixes, r.quad_mixes
    );
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "cores", "perf 64KB", "perf 1MB", "fair 4KB", "fair 64KB", "fair 1MB"
    );
    for (cores, perf, fair) in &r.rows {
        println!(
            "{:<8}{:>12.3}{:>12.3}{:>12.3}{:>12.3}{:>12.3}",
            cores, perf[0], perf[1], fair[0], fair[1], fair[2]
        );
    }
}
