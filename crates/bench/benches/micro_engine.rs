//! Criterion micro-benchmark of the full simulation loop: events per second
//! on a small single-core run (the metric that bounds sweep wall-clock).

use criterion::{criterion_group, criterion_main, Criterion};
use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};
use mnpu_systolic::WorkloadTrace;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
    let net = zoo::ncf(Scale::Bench);
    let trace = WorkloadTrace::generate(&net, &cfg.arch[0]);

    c.bench_function("simulate_ncf_single_core", |b| {
        b.iter(|| {
            let sim = Simulation::new(black_box(&cfg), std::slice::from_ref(&trace));
            black_box(sim.run().total_cycles)
        })
    });

    let dual = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces = [trace.clone(), WorkloadTrace::generate(&zoo::ncf(Scale::Bench), &dual.arch[1])];
    c.bench_function("simulate_ncf_pair_dwt", |b| {
        b.iter(|| {
            let sim = Simulation::new(black_box(&dual), &traces);
            black_box(sim.run().total_cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
