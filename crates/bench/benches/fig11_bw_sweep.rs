//! Bench target regenerating the paper's Fig. 11: single-core speedup vs
//! DRAM bandwidth, normalized to the smallest configuration.

use mnpu_bench::figures::bandwidth::fig11_bandwidth_sweep;
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig11_bandwidth_sweep(&mut h);
    println!("Fig. 11 — single-core speedup vs DRAM bandwidth (8 GB/s channels)");
    print!("{:<8}", "wl");
    for ch in &r.channels {
        print!("{:>9}", format!("{}GB/s", ch * 8));
    }
    println!();
    for (name, s) in &r.series {
        print!("{:<8}", name);
        for v in s {
            print!("{:>9.3}", v);
        }
        println!();
    }
}
