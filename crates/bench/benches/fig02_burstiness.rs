//! Bench target regenerating the paper's Fig. 2b: the bursty DRAM request
//! pattern of NCF on a single-core NPU (moving average over 1000 cycles).

use mnpu_bench::figures::bandwidth::fig02_burstiness;

fn main() {
    let b = fig02_burstiness();
    println!("Fig. 2b — NCF memory-request burstiness (single core, Ideal)");
    println!("window = {} cycles (smoothed over 10 windows)", b.window);
    println!(
        "peak = {:.3} req/cycle, mean = {:.3} req/cycle, peak/mean = {:.1}x",
        b.peak,
        b.mean,
        b.peak / b.mean.max(1e-12)
    );
    println!("series ({} points, one per {} cycles):", b.series.len(), b.window);
    let step = (b.series.len() / 60).max(1);
    for (i, v) in b.series.iter().enumerate().step_by(step) {
        let bar = "#".repeat((v / b.peak.max(1e-12) * 50.0) as usize);
        println!("{:>8} | {:7.3} {}", i as u64 * b.window, v, bar);
    }
}
