//! Observability demo: *why* each sharing level is slow, not just *that*
//! it is. Re-runs Fig. 4 dual-core mixes with the statistics probe and
//! attributes every active cycle to compute / translation / load / store,
//! next to the contention counters (DRAM row-conflict rate, TLB hit rate,
//! mean walk latency) that explain the stalls — the paper's §4 analysis,
//! produced by counters instead of ad-hoc accounting.

use mnpu_bench::Harness;
use mnpu_engine::{ProbeMode, SharingLevel};

fn main() {
    let h = Harness::new();
    let names = h.names().iter().map(|s| s.to_string()).collect::<Vec<_>>();
    // A compute-heavy and a walk-heavy pairing, as in the Fig. 4 grid.
    let mixes: &[[usize; 2]] = &[[6, 6], [6, 7], [0, 3]];

    println!("Obs. 1 — stall attribution for Fig. 4 dual-core mixes (stats probe)");
    println!(
        "{:<22}{:<8}{:>9}{:>9}{:>9}{:>9}{:>11}{:>9}{:>11}",
        "mix / level",
        "core",
        "compute%",
        "xlate%",
        "load%",
        "store%",
        "rowconf%",
        "tlbhit%",
        "walk(cyc)"
    );
    for mix in mixes {
        for lvl in SharingLevel::CO_RUN_LEVELS {
            let mut cfg = Harness::dual(lvl);
            cfg.probe = ProbeMode::Stats;
            let r = h.run_report(&cfg, mix);
            let stats = r.stats.as_ref().expect("probe enabled");
            for (ci, c) in stats.cores.iter().enumerate() {
                let pct = |v: u64| 100.0 * v as f64 / c.active_cycles.max(1) as f64;
                let conflicts = c.row_hits + c.row_misses + c.row_conflicts;
                println!(
                    "{:<22}{:<8}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>11.1}{:>9.1}{:>11.0}",
                    format!("{}+{} {:?}", names[mix[0]], names[mix[1]], lvl),
                    ci,
                    pct(c.stall.compute),
                    pct(c.stall.wait_translation),
                    pct(c.stall.wait_load),
                    pct(c.stall.wait_store),
                    100.0 * c.row_conflicts as f64 / conflicts.max(1) as f64,
                    100.0 * c.tlb_hit_rate(),
                    c.walk_latency.mean(),
                );
            }
        }
    }
}
