//! Extension experiment: DWS-style *managed* walker sharing.
//!
//! The paper compares static walker partitions against fully dynamic
//! sharing (+DW). The original's `misc_config` also supports per-core
//! lower/upper bounds on the shared pool; this bench sweeps that middle
//! ground on every dual-core mix: guaranteed minimums protect victims from
//! walk-hungry co-runners while still allowing stealing.

use mnpu_bench::Harness;
use mnpu_engine::SharingLevel;
use mnpu_metrics::{fairness, geomean};
use mnpu_predict::mapping::multisets;

/// Per-core (lower, upper) bounds on the shared walker pool.
type WalkerBounds = Option<(Vec<usize>, Vec<usize>)>;

fn main() {
    let h = Harness::new();
    // 4 walkers total on the dual-core bench chip.
    let configs: [(&str, WalkerBounds); 4] = [
        ("shared", None),
        ("min1_max4", Some((vec![1, 1], vec![4, 4]))),
        ("min1_max3", Some((vec![1, 1], vec![3, 3]))),
        ("min2_max2", Some((vec![2, 2], vec![2, 2]))),
    ];
    println!("Extension 1 — bounded walker pool on the dual-core +DW chip");
    print!("{:<14}", "mix");
    for (label, _) in &configs {
        print!("{label:>12}{:>8}", "fair");
    }
    println!();

    let mut perf_cols = vec![Vec::new(); configs.len()];
    let mut fair_cols = vec![Vec::new(); configs.len()];
    for ws in multisets(8, 2) {
        let label: String = ws.iter().map(|&w| h.names()[w]).collect::<Vec<_>>().join("+");
        print!("{label:<14}");
        for (i, (_, bounds)) in configs.iter().enumerate() {
            let mut cfg = Harness::dual(SharingLevel::PlusDw);
            if let Some((min, max)) = bounds {
                cfg = cfg.with_ptw_bounds(min.clone(), max.clone());
            }
            let speedups = h.mix_speedups(&cfg, &ws);
            let slowdowns: Vec<f64> = speedups.iter().map(|s| 1.0 / s).collect();
            let p = geomean(&speedups);
            let f = fairness(&slowdowns);
            print!("{p:>12.3}{f:>8.3}");
            perf_cols[i].push(p);
            fair_cols[i].push(f);
        }
        println!();
    }
    print!("{:<14}", "geomean");
    for i in 0..configs.len() {
        print!("{:>12.3}{:>8.3}", geomean(&perf_cols[i]), geomean(&fair_cols[i]));
    }
    println!();
    println!("\n(minimum reservations trade a little throughput for fairness;");
    println!(" min=max reduces to a static split)");
}
