//! Bench target regenerating the paper's Fig. 13: PTW partitioning, performance (normalized to Ideal)

use mnpu_bench::figures::translation::{fig13_ptw_partition_performance, PTW_LABELS};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig13_ptw_partition_performance(&mut h);
    println!("Fig. 13 — PTW partitioning, performance (normalized to Ideal)");
    print!("{:<14}", "mix");
    for l in PTW_LABELS {
        print!("{:>10}", l);
    }
    println!();
    for (label, v) in &r.mixes {
        print!("{:<14}", label);
        for x in v {
            print!("{:>10.3}", x);
        }
        println!();
    }
    print!("{:<14}", "geomean");
    for x in &r.overall {
        print!("{:>10.3}", x);
    }
    println!();
}
