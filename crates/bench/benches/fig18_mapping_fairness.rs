//! Bench target regenerating the paper's Fig. 18: the co-runner mapping
//! study fairness CDF (prediction vs oracle, worst, and random assignment).

use mnpu_bench::figures::mapping::{fig18_mapping_fairness, PairTables};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let tables = PairTables::build(&mut h);
    let r = fig18_mapping_fairness(&tables);
    println!("Fig. 18 — mapping study, fairness normalized to random assignment");
    println!("({} of {} eight-workload multisets; MNPU_FULL=1 for all)", r.sampled, r.total);
    println!("prediction beats random in {:.1}% of multisets", r.frac_better_than_random * 100.0);
    println!("{:<10}{:>12}{:>12}{:>12}", "quantile", "worst", "prediction", "oracle");
    for q in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
        println!(
            "{:<10.2}{:>12.4}{:>12.4}{:>12.4}",
            q,
            r.worst.quantile(q),
            r.prediction.quantile(q),
            r.oracle.quantile(q)
        );
    }
}
