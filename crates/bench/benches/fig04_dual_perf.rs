//! Bench target regenerating the paper's Fig. 4: dual-core mix performance (speedup vs Ideal) per sharing level

use mnpu_bench::figures::sharing::{fig04_dual_performance, LEVEL_LABELS};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig04_dual_performance(&mut h);
    println!("Fig. 4 — dual-core mix performance (speedup vs Ideal) per sharing level");
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}",
        "mix", LEVEL_LABELS[0], LEVEL_LABELS[1], LEVEL_LABELS[2], LEVEL_LABELS[3]
    );
    for (label, v) in &r.mixes {
        println!("{:<14}{:>10.3}{:>10.3}{:>10.3}{:>10.3}", label, v[0], v[1], v[2], v[3]);
    }
    let o = r.overall;
    println!("{:<14}{:>10.3}{:>10.3}{:>10.3}{:>10.3}", "geomean", o[0], o[1], o[2], o[3]);
}
