//! Extension experiment: sharing behavior of training-shaped workloads.
//!
//! The original models inference only; `mnpu_model::training_unroll`
//! rewrites a network into a forward+backward iteration. This bench
//! repeats the Fig. 4-style comparison for a training mix.

use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_metrics::geomean;
use mnpu_model::{training_unroll, zoo, Scale};

fn main() {
    let a = training_unroll(&zoo::ncf(Scale::Bench));
    let b = training_unroll(&zoo::gpt2(Scale::Bench));
    println!("Extension 4 — sharing levels on a training mix ({} + {})", a.name(), b.name());

    let base = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let ideal = base.ideal_solo();
    let ia = Simulation::execute_networks(&ideal, std::slice::from_ref(&a)).cores[0].cycles;
    let ib = Simulation::execute_networks(&ideal, std::slice::from_ref(&b)).cores[0].cycles;
    println!("ideal cycles: {ia} / {ib}");
    println!("{:<8}{:>10}{:>10}{:>10}", "level", "spdup A", "spdup B", "geomean");
    for level in SharingLevel::CO_RUN_LEVELS {
        let cfg = SystemConfig::bench(2, level);
        let r = Simulation::execute_networks(&cfg, &[a.clone(), b.clone()]);
        let sa = ia as f64 / r.cores[0].cycles as f64;
        let sb = ib as f64 / r.cores[1].cycles as f64;
        println!("{:<8}{:>10.3}{:>10.3}{:>10.3}", level.label(), sa, sb, geomean(&[sa, sb]));
    }
    println!("\n(training roughly triples traffic per iteration; dynamic sharing");
    println!(" keeps its advantage over static partitioning)");
}
