//! Extension experiment: the on-chip interconnect as a fourth shared
//! resource.
//!
//! The paper assumes an ideal path between cores and the memory system;
//! this bench inserts the crossbar model at two widths and reports the
//! slowdown and queueing it introduces on a representative mix.

use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};
use mnpu_noc::NocConfig;

fn main() {
    let nets = [zoo::deepspeech2(Scale::Bench), zoo::gpt2(Scale::Bench)];
    println!("Extension 3 — interconnect sensitivity of the ds2+gpt2 mix (+DWT)");
    println!(
        "{:<22}{:>12}{:>12}{:>14}{:>14}",
        "interconnect", "ds2 cycles", "gpt2 cycles", "ds2 queue", "gpt2 queue"
    );
    let configs: [(&str, Option<NocConfig>); 3] = [
        ("ideal (paper)", None),
        ("wide 64B/c +4", Some(NocConfig::wide())),
        ("narrow 16B/c +8", Some(NocConfig::narrow())),
    ];
    for (label, noc) in configs {
        let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
        if let Some(n) = noc {
            cfg = cfg.with_noc(n);
        }
        let r = Simulation::execute_networks(&cfg, &nets);
        println!(
            "{:<22}{:>12}{:>12}{:>14}{:>14}",
            label,
            r.cores[0].cycles,
            r.cores[1].cycles,
            r.cores[0].noc_queue_cycles,
            r.cores[1].noc_queue_cycles,
        );
    }
    println!("\n(a wide crossbar is nearly free; a narrow one serializes tile");
    println!(" bursts before they even reach the shared DRAM)");
}
