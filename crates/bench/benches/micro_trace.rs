//! Criterion micro-benchmarks of the SW request generator: trace
//! generation throughput for each benchmark model.

use criterion::{criterion_group, criterion_main, Criterion};
use mnpu_model::{zoo, Scale};
use mnpu_systolic::{ArchConfig, WorkloadTrace};
use std::hint::black_box;

fn bench_trace(c: &mut Criterion) {
    let arch = ArchConfig::bench_npu();
    for name in ["res", "dlrm", "gpt2"] {
        let net = zoo::by_name(name, Scale::Bench).expect("known benchmark");
        c.bench_function(&format!("trace_generate_{name}"), |b| {
            b.iter(|| black_box(WorkloadTrace::generate(black_box(&net), &arch)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace
}
criterion_main!(benches);
