//! Bench target regenerating the paper's Fig. 6: dual-core mix fairness (Eq. 1) per sharing level

use mnpu_bench::figures::sharing::{fig06_dual_fairness, LEVEL_LABELS};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig06_dual_fairness(&mut h);
    println!("Fig. 6 — dual-core mix fairness (Eq. 1) per sharing level");
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}",
        "mix", LEVEL_LABELS[0], LEVEL_LABELS[1], LEVEL_LABELS[2], LEVEL_LABELS[3]
    );
    for (label, v) in &r.mixes {
        println!("{:<14}{:>10.3}{:>10.3}{:>10.3}{:>10.3}", label, v[0], v[1], v[2], v[3]);
    }
    let o = r.overall;
    println!("{:<14}{:>10.3}{:>10.3}{:>10.3}{:>10.3}", "geomean", o[0], o[1], o[2], o[3]);
}
