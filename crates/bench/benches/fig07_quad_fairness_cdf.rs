//! Bench target regenerating the paper's Fig. 7: quad-core fairness CDF per sharing level

use mnpu_bench::figures::sharing::{fig07_quad_fairness_cdf, LEVEL_LABELS};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig07_quad_fairness_cdf(&mut h);
    println!("Fig. 7 — quad-core fairness CDF per sharing level");
    println!("({} of {} quad-core mixes; MNPU_FULL=1 for all)", r.sampled, r.total);
    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}",
        "quantile", LEVEL_LABELS[0], LEVEL_LABELS[1], LEVEL_LABELS[2], LEVEL_LABELS[3]
    );
    for q in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0] {
        print!("{:<10.2}", q);
        for cdf in &r.cdfs {
            print!("{:>10.3}", cdf.quantile(q));
        }
        println!();
    }
    print!("{:<10}", "mean");
    for cdf in &r.cdfs {
        let m: f64 = cdf.values().iter().sum::<f64>() / cdf.len() as f64;
        print!("{:>10.3}", m);
    }
    println!();
}
