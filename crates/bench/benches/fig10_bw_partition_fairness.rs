//! Bench target regenerating the paper's Fig. 10: DRAM bandwidth partitioning, fairness (translation off)

use mnpu_bench::figures::bandwidth::{fig10_bw_partition_fairness, BW_LABELS};
use mnpu_bench::Harness;

fn main() {
    let mut h = Harness::new();
    let r = fig10_bw_partition_fairness(&mut h);
    println!("Fig. 10 — DRAM bandwidth partitioning, fairness (translation off)");
    print!("{:<14}", "mix");
    for l in BW_LABELS {
        print!("{:>11}", l);
    }
    println!();
    for (label, v) in &r.mixes {
        print!("{:<14}", label);
        for x in v {
            print!("{:>11.3}", x);
        }
        println!();
    }
    print!("{:<14}", "geomean");
    for x in &r.overall {
        print!("{:>11.3}", x);
    }
    println!();
}
