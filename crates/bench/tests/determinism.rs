//! Parallel-sweep determinism: fanning the dual-core sweep across worker
//! threads must produce byte-identical per-core cycle counts to the plain
//! serial path. (Every simulation is single-threaded and deterministic;
//! the executor only changes *which thread* runs it.)

use mnpu_bench::{Harness, SweepExecutor};
use mnpu_engine::SharingLevel;
use mnpu_predict::mapping::multisets;

#[test]
fn parallel_dual_sweep_matches_serial_exactly() {
    // Isolate from the on-disk cache and pin the worker count.
    std::env::set_var("MNPU_NO_CACHE", "1");
    std::env::set_var("MNPU_JOBS", "4");

    let reqs: Vec<(mnpu_engine::SystemConfig, Vec<usize>)> =
        multisets(8, 2).into_iter().map(|ws| (Harness::dual(SharingLevel::PlusDwt), ws)).collect();
    assert_eq!(reqs.len(), 36, "all dual-core mixes");

    let serial_h = Harness::new();
    let serial: Vec<Vec<u64>> = reqs.iter().map(|(cfg, ws)| serial_h.run_mix(cfg, ws)).collect();

    let parallel_h = Harness::new();
    let executor = SweepExecutor::new();
    assert_eq!(executor.jobs(), 4, "MNPU_JOBS override");
    let parallel = executor.run_mixes(&parallel_h, &reqs);

    assert_eq!(serial, parallel, "per-core cycle counts must be byte-identical");
}
