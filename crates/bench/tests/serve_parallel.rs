//! Parallel serve-mode execution is byte-identical to the serial path.
//!
//! Each serve run is single-threaded and deterministic, so fanning a
//! scenario list across workers must change nothing but wall-clock time:
//! same reports, byte-for-byte, and the same memo-hit count.

use mnpu_bench::ServeExecutor;
use mnpu_config::{parse_scenario, ScenarioSpec};

fn scenario(name: &str, text: &str) -> ScenarioSpec {
    parse_scenario(name, text).unwrap()
}

/// A small list with queueing, both FIFO policies, and a duplicate entry.
fn scenario_list() -> Vec<ScenarioSpec> {
    vec![
        scenario("a", "cores = 1\npattern = fixed:1000\njob = ncf\njob = ncf\n"),
        scenario(
            "b",
            "cores = 2\npattern = bursty:2:100000\nseed = 3\npolicy = round_robin\n\
             job = ncf\njob = dlrm\njob = ncf\n",
        ),
        scenario("c", "cores = 2\nsharing = Static\njob = ncf\njob = dlrm\n"),
        scenario("a2", "cores = 1\npattern = fixed:1000\njob = ncf\njob = ncf\n"), // dup of a
    ]
}

#[test]
fn parallel_and_serial_serve_runs_are_byte_identical() {
    let specs = scenario_list();
    let serial = ServeExecutor::with_jobs(1);
    let parallel = ServeExecutor::with_jobs(4);
    let a = serial.run_scenarios(&specs);
    let b = parallel.run_scenarios(&specs);
    assert_eq!(a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ra.to_json(), rb.to_json(), "scenario {i} diverged across worker counts");
    }
    assert_eq!(
        serial.cache_hits(),
        parallel.cache_hits(),
        "memo-hit accounting must not depend on the worker count"
    );
    assert_eq!(serial.cache_hits(), 1, "the duplicate scenario is the only hit");
}

#[test]
fn repeating_a_list_is_all_memo_hits_and_identical() {
    let specs = scenario_list();
    let ex = ServeExecutor::with_jobs(2);
    let first = ex.run_scenarios(&specs);
    let hits_after_first = ex.cache_hits();
    let second = ex.run_scenarios(&specs);
    assert_eq!(ex.cache_hits(), hits_after_first + specs.len());
    for (ra, rb) in first.iter().zip(&second) {
        assert!(std::sync::Arc::ptr_eq(ra, rb), "repeat must reuse the memoized report");
    }
}

#[test]
fn executor_worker_count_comes_from_mnpu_jobs() {
    std::env::set_var("MNPU_JOBS", "3");
    assert_eq!(ServeExecutor::new().jobs(), 3);
    std::env::remove_var("MNPU_JOBS");
}
