//! The on-disk run cache carries a version header and is dropped wholesale
//! when the header does not match the current `CACHE_VERSION`.

use mnpu_bench::Harness;
use mnpu_engine::SharingLevel;
use std::fs;
use std::path::PathBuf;

fn temp_target_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mnpu_cache_test_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("create temp target dir");
    d
}

#[test]
fn stale_cache_is_dropped_and_rewritten_with_header() {
    let dir = temp_target_dir("hdr");
    let path = dir.join("mnpu_run_cache.tsv");

    // A pre-header-era file: bare key\tcycles lines, no version line.
    fs::write(&path, "12345\t1,2\n67890\t3,4\n").unwrap();

    std::env::remove_var("MNPU_NO_CACHE");
    std::env::set_var("CARGO_TARGET_DIR", &dir);

    let h = Harness::new();
    // The stale file must be gone (dropped on header mismatch).
    assert!(!path.exists(), "stale cache file should be deleted");

    // A run writes the cache back, header first.
    let cfg = Harness::dual(SharingLevel::Static);
    let cycles = h.run_mix(&cfg, &[6, 6]);
    let text = fs::read_to_string(&path).expect("cache rewritten");
    let first = text.lines().next().expect("non-empty cache");
    assert!(first.starts_with("#mnpu-run-cache v"), "header line expected, got {first:?}");
    assert!(!text.contains("12345\t1,2"), "stale entries must not survive");

    // A fresh harness reloads the versioned file and serves from it.
    let h2 = Harness::new();
    assert_eq!(h2.run_mix(&cfg, &[6, 6]), cycles);

    let _ = fs::remove_dir_all(&dir);
}
