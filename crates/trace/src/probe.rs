//! [`FlightProbe`]: the engine-facing probe that feeds the flight
//! recorder and the live-progress cell.
//!
//! The probe splits the event taxonomy by frequency. *Dense* events (DRAM
//! row outcomes, TLB lookups, walks, DMA arbitration, core-state samples)
//! are folded into plain local counters and a cycle-exact stall
//! integration, then published to the telemetry handle's atomics once per
//! 2^16-cycle window — they never touch a lock. *Structural* events (tile
//! phase edges, refreshes, serve-queue transitions) are rare — a handful
//! per tile — and go to the ring under its mutex. That split is what
//! keeps the recorder cheap enough for the CI overhead gate.
//!
//! Determinism neutrality: `save_state`/`load_state`/`into_report`
//! delegate to the wrapped inner probe, so checkpoints and `RunReport`s
//! are byte-identical to an untraced run. Wall-clock readings exist only
//! inside the telemetry handle.

use crate::progress::{StallSnapshot, TrafficSnapshot};
use crate::recorder::FlightKind;
use crate::TraceHandle;
use mnpu_probe::{CoreState, Event, NullProbe, Probe, StatsReport};

/// Dense-event deltas are pushed to the handle's atomics every
/// `1 << PUBLISH_SHIFT` cycles — the same granularity as the job driver's
/// poll loop, so a `/progress` read after a poll sees fresh attribution.
const PUBLISH_SHIFT: u32 = 16;

/// A probe that records flight events and live progress while delegating
/// report/checkpoint behaviour to an inner probe (default: none).
#[derive(Debug, Clone)]
pub struct FlightProbe<P: Probe = NullProbe> {
    inner: P,
    handle: TraceHandle,
    /// Per-core (current state, since-cycle) for stall integration.
    states: Vec<(CoreState, u64)>,
    stall: StallSnapshot,
    traffic: TrafficSnapshot,
    last_window: u64,
    max_cycle: u64,
}

impl<P: Probe> Default for FlightProbe<P> {
    /// Binds to the telemetry handle installed on this thread (the
    /// engine builds its memory-side probe via `Default` on the driving
    /// thread, so both halves share one ring), or a private handle when
    /// none is installed — recording always happens, so benchmarks
    /// measure its true cost.
    fn default() -> Self {
        FlightProbe::with_handle(crate::installed().unwrap_or_default())
    }
}

impl<P: Probe> FlightProbe<P> {
    /// A probe publishing into `handle`.
    pub fn with_handle(handle: TraceHandle) -> Self {
        FlightProbe {
            inner: P::default(),
            handle,
            states: Vec::new(),
            stall: StallSnapshot::default(),
            traffic: TrafficSnapshot::default(),
            last_window: 0,
            max_cycle: 0,
        }
    }

    /// The telemetry handle this probe publishes into.
    pub fn handle(&self) -> &TraceHandle {
        &self.handle
    }

    fn integrate_state(&mut self, core: usize, state: CoreState, cycle: u64) {
        if self.states.len() <= core {
            self.states.resize(core + 1, (CoreState::Idle, cycle));
        }
        let (prev, since) = self.states[core];
        let span = cycle.saturating_sub(since);
        match prev {
            CoreState::Compute => self.stall.compute += span,
            CoreState::WaitTranslation => self.stall.wait_translation += span,
            CoreState::WaitLoad => self.stall.wait_load += span,
            CoreState::WaitStore => self.stall.wait_store += span,
            CoreState::Idle | CoreState::Finished => {}
        }
        self.states[core] = (state, cycle);
    }

    /// Push the accumulated dense-event deltas to the handle's atomics.
    fn flush(&mut self) {
        if self.stall != StallSnapshot::default() {
            self.handle.progress().add_stall(&std::mem::take(&mut self.stall));
        }
        if self.traffic != TrafficSnapshot::default() {
            self.handle.progress().add_traffic(&std::mem::take(&mut self.traffic));
        }
    }

    /// Close open core-state spans at the last seen cycle and flush.
    fn finalize(&mut self) {
        for core in 0..self.states.len() {
            let cycle = self.max_cycle;
            let state = self.states[core].0;
            self.integrate_state(core, state, cycle);
        }
        self.flush();
    }
}

impl<P: Probe> Probe for FlightProbe<P> {
    const ENABLED: bool = true;

    fn record(&mut self, cycle: u64, event: Event) {
        if P::ENABLED {
            self.inner.record(cycle, event);
        }
        self.max_cycle = self.max_cycle.max(cycle);
        match event {
            // Dense events: counter bumps and stall integration only.
            Event::DramRowHit { .. }
            | Event::DramRowMiss { .. }
            | Event::DramRowConflict { .. } => {
                self.traffic.dram_txns += 1;
            }
            Event::TlbHit { .. } => self.traffic.tlb_hits += 1,
            Event::TlbMiss { .. } => self.traffic.tlb_misses += 1,
            Event::WalkStart { .. } => self.traffic.walks += 1,
            Event::WalkerStall { .. } => self.traffic.walker_stalls += 1,
            Event::DmaRetry { .. } => self.traffic.dma_retries += 1,
            Event::CoreState { core, state } => self.integrate_state(core, state, cycle),
            Event::DramIssue { .. }
            | Event::TlbEvict { .. }
            | Event::WalkDone { .. }
            | Event::DmaGrant { .. } => {}
            // Structural events: into the ring.
            Event::PhaseBegin { core, phase, id } => {
                self.handle.record(cycle, FlightKind::PhaseBegin(phase), core as u32, id);
            }
            Event::PhaseEnd { core, phase, id } => {
                self.handle.record(cycle, FlightKind::PhaseEnd(phase), core as u32, id);
            }
            Event::DramRefresh { channel } => {
                self.handle.record(cycle, FlightKind::Refresh, channel as u32, 0);
            }
            Event::JobArrive { job, queue_depth } => {
                self.handle.record(cycle, FlightKind::JobArrive, queue_depth as u32, job);
            }
            Event::JobDispatch { job, core, .. } => {
                self.handle.record(cycle, FlightKind::JobDispatch, core as u32, job);
            }
            Event::JobComplete { job, core } => {
                self.handle.record(cycle, FlightKind::JobComplete, core as u32, job);
            }
        }
        let window = cycle >> PUBLISH_SHIFT;
        if window != self.last_window {
            self.last_window = window;
            self.flush();
        }
    }

    fn merge(&mut self, other: Self) {
        // The memory-side half never samples core states, so only the
        // dense counters and (if unshared) its ring need folding in.
        self.stall.compute += other.stall.compute;
        self.stall.wait_translation += other.stall.wait_translation;
        self.stall.wait_load += other.stall.wait_load;
        self.stall.wait_store += other.stall.wait_store;
        self.traffic.dram_txns += other.traffic.dram_txns;
        self.traffic.tlb_hits += other.traffic.tlb_hits;
        self.traffic.tlb_misses += other.traffic.tlb_misses;
        self.traffic.walks += other.traffic.walks;
        self.traffic.dma_retries += other.traffic.dma_retries;
        self.traffic.walker_stalls += other.traffic.walker_stalls;
        self.max_cycle = self.max_cycle.max(other.max_cycle);
        if !self.handle.same_ring(other.handle()) {
            self.handle.merge_ring_from(other.handle());
        }
        self.inner.merge(other.inner);
    }

    fn into_report(mut self) -> Option<StatsReport> {
        self.finalize();
        self.inner.into_report()
    }

    fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        // Telemetry is not simulation state: checkpoints written through a
        // flight probe are byte-identical to the inner probe's alone.
        self.inner.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        self.inner.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_probe::Phase;

    #[test]
    fn dense_events_publish_at_window_boundaries() {
        let handle = TraceHandle::new();
        let mut p: FlightProbe = FlightProbe::with_handle(handle.clone());
        p.record(10, Event::TlbHit { core: 0 });
        p.record(20, Event::TlbMiss { core: 0 });
        p.record(30, Event::DramRowHit { channel: 0, core: 0, residency: 5 });
        // Nothing published until a window boundary crosses.
        assert_eq!(handle.progress().snapshot().traffic.tlb_hits, 0);
        // The boundary-crossing event flushes, itself included.
        p.record(1 << 16, Event::TlbHit { core: 1 });
        let t = handle.progress().snapshot().traffic;
        assert_eq!(t.tlb_hits, 2);
        assert_eq!(t.tlb_misses, 1);
        assert_eq!(t.dram_txns, 1);
    }

    #[test]
    fn core_state_samples_integrate_into_stall_attribution() {
        let handle = TraceHandle::new();
        let mut p: FlightProbe = FlightProbe::with_handle(handle.clone());
        p.record(0, Event::CoreState { core: 0, state: CoreState::Compute });
        p.record(100, Event::CoreState { core: 0, state: CoreState::WaitLoad });
        p.record(150, Event::CoreState { core: 0, state: CoreState::Finished });
        assert_eq!(p.into_report(), None);
        let s = handle.progress().snapshot().stall;
        assert_eq!(s.compute, 100);
        assert_eq!(s.wait_load, 50);
    }

    #[test]
    fn structural_events_land_in_the_ring() {
        let handle = TraceHandle::new();
        let mut p: FlightProbe = FlightProbe::with_handle(handle.clone());
        p.record(100, Event::PhaseBegin { core: 2, phase: Phase::Load, id: 7 });
        p.record(200, Event::PhaseEnd { core: 2, phase: Phase::Load, id: 7 });
        p.record(300, Event::DramRefresh { channel: 1 });
        let events = handle.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, FlightKind::PhaseBegin(Phase::Load));
        assert_eq!(events[0].core, 2);
        assert_eq!(events[2].kind, FlightKind::Refresh);
    }

    #[test]
    fn merge_absorbs_an_unshared_ring_and_counters() {
        let handle = TraceHandle::new();
        let mut engine_side: FlightProbe = FlightProbe::with_handle(handle.clone());
        let mut memory_side: FlightProbe = FlightProbe::with_handle(TraceHandle::new());
        engine_side.record(100, Event::PhaseBegin { core: 0, phase: Phase::Compute, id: 0 });
        memory_side.record(50, Event::DramRefresh { channel: 0 });
        memory_side.record(10, Event::DramRowHit { channel: 0, core: 0, residency: 1 });
        engine_side.merge(memory_side);
        let cycles: Vec<u64> = handle.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![50, 100]);
        assert_eq!(engine_side.into_report(), None);
        assert_eq!(handle.progress().snapshot().traffic.dram_txns, 1);
    }

    #[test]
    fn default_binds_the_installed_handle() {
        let handle = TraceHandle::new();
        let bound = {
            let _guard = crate::install(&handle);
            let p: FlightProbe = FlightProbe::default();
            p.handle().same_ring(&handle)
        };
        assert!(bound);
        // Outside the guard a fresh default gets a private ring.
        let p: FlightProbe = FlightProbe::default();
        assert!(!p.handle().same_ring(&handle));
    }
}
