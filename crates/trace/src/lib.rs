//! Runtime observability for the mNPUsim reproduction: a flight recorder,
//! live progress telemetry and Chrome-trace export.
//!
//! The probe layer (`mnpu-probe`) explains a run *after* it finishes; this
//! crate makes a run observable *while* it executes and *when* it dies.
//! Everything hangs off a [`TraceHandle`] — one per job, cheaply cloned:
//!
//! * a [`FlightRecorder`] ring holding the job's most recent structural
//!   events, double-stamped with wall clock and simulated cycle, dumped as
//!   a `flight-<job>.json` black box when a worker panics, a budget trips,
//!   a cancellation lands or the daemon drains — and exportable as a
//!   Chrome trace;
//! * a [`ProgressCell`] of lock-free atomics the driver publishes into at
//!   its 2^16-cycle poll boundary (cycles simulated, lifecycle phase,
//!   stall attribution, traffic counters, a sim-cycles/sec rate);
//! * process-global [`counters`] for simulator internals the daemon's
//!   `/metrics` endpoint cannot otherwise see (run-cache hits,
//!   prefix-shared simulations, fast-forward commits).
//!
//! The engine feeds a handle through [`FlightProbe`], which splits the
//! probe taxonomy by frequency — dense events become counters, structural
//! events enter the ring. Because the engine builds its memory-side probe
//! via `Default` on the driving thread, a job installs its handle
//! thread-locally ([`install`]) so both probe halves share one ring.
//!
//! Everything here is determinism-neutral by construction: wall-clock
//! readings live only in telemetry, never in simulation state, reports or
//! checkpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
pub mod counters;
mod probe;
mod progress;
mod recorder;

pub use chrome::chrome_trace;
pub use probe::FlightProbe;
pub use progress::{ProgressCell, ProgressSnapshot, StallSnapshot, TrafficSnapshot};
pub use recorder::{FlightEvent, FlightKind, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};

use mnpu_probe::JobPhase;
use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The telemetry state shared by everything observing one job.
#[derive(Debug)]
struct JobTelemetry {
    epoch: Instant,
    recorder: Mutex<FlightRecorder>,
    progress: ProgressCell,
}

/// A cheaply-clonable handle to one job's telemetry (ring + progress).
///
/// Clones share the same ring and progress cell; [`TraceHandle::same_ring`]
/// tells two handles apart.
#[derive(Debug, Clone)]
pub struct TraceHandle(Arc<JobTelemetry>);

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::new()
    }
}

impl TraceHandle {
    /// A fresh handle with the default ring capacity.
    pub fn new() -> Self {
        TraceHandle::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A fresh handle whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceHandle(Arc::new(JobTelemetry {
            epoch: Instant::now(),
            recorder: Mutex::new(FlightRecorder::new(capacity)),
            progress: ProgressCell::default(),
        }))
    }

    /// Milliseconds since this handle was created (the wall stamp every
    /// recorded event carries).
    pub fn wall_ms(&self) -> u64 {
        self.0.epoch.elapsed().as_millis() as u64
    }

    /// The job's live-progress cell.
    pub fn progress(&self) -> &ProgressCell {
        &self.0.progress
    }

    /// Record a structural event into the ring, stamped with the current
    /// wall clock and the given simulated cycle.
    pub fn record(&self, cycle: u64, kind: FlightKind, core: u32, id: u64) {
        let wall = self.wall_ms();
        self.0.recorder.lock().unwrap().push(wall, cycle, kind, core, id);
    }

    /// Record a job-lifecycle edge: enters the ring *and* updates the
    /// progress cell's phase.
    pub fn record_lifecycle(&self, phase: JobPhase) {
        self.0.progress.set_phase(phase);
        self.record(0, FlightKind::Lifecycle(phase), 0, 0);
    }

    /// Publish a driver poll boundary: updates the progress cycles/rate
    /// and drops a poll mark into the ring.
    pub fn publish_poll(&self, cycles: u64) {
        let wall = self.wall_ms();
        self.0.progress.publish_poll(cycles, wall);
        let polls = self.0.progress.snapshot().polls;
        self.0.recorder.lock().unwrap().push(wall, cycles, FlightKind::Poll, 0, polls);
    }

    /// Publish sweep-level progress (finished simulations / units plus
    /// accumulated simulated cycles).
    pub fn publish_sweep(&self, sims: u64, units: u64, cycles: u64) {
        let wall = self.wall_ms();
        self.0.progress.publish_sweep(sims, units, cycles, wall);
        self.0.recorder.lock().unwrap().push(wall, cycles, FlightKind::Poll, 0, sims);
    }

    /// The ring's surviving events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.0.recorder.lock().unwrap().events()
    }

    /// The black-box dump for `job` (see [`FlightRecorder::to_json`]).
    pub fn dump_json(&self, job: &str) -> String {
        self.0.recorder.lock().unwrap().to_json(job)
    }

    /// The ring rendered as a Chrome-trace document for `job` on `worker`.
    pub fn chrome_json(&self, job: &str, worker: usize) -> String {
        chrome_trace(job, worker, &self.events())
    }

    /// `true` when `other` shares this handle's ring (clone of the same
    /// handle).
    pub fn same_ring(&self, other: &TraceHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Fold the surviving events of `other`'s ring into this one (used at
    /// probe-merge time when the two halves recorded separately).
    pub fn merge_ring_from(&self, other: &TraceHandle) {
        if self.same_ring(other) {
            return;
        }
        let theirs = other.0.recorder.lock().unwrap().clone();
        self.0.recorder.lock().unwrap().absorb(&theirs);
    }
}

thread_local! {
    static INSTALLED: RefCell<Option<TraceHandle>> = const { RefCell::new(None) };
}

/// Install `handle` as this thread's ambient telemetry sink for the
/// guard's lifetime. While installed, every [`FlightProbe`] constructed
/// via `Default` on this thread binds to it — including the memory-side
/// probe the engine builds internally. The previous handle (if any) is
/// restored on drop, so installs nest, and the guard restores on unwind.
pub fn install(handle: &TraceHandle) -> InstallGuard {
    let prev = INSTALLED.with(|slot| slot.replace(Some(handle.clone())));
    InstallGuard { prev }
}

/// The handle currently installed on this thread, if any.
pub fn installed() -> Option<TraceHandle> {
    INSTALLED.with(|slot| slot.borrow().clone())
}

/// RAII guard for [`install`]; restores the previously installed handle
/// (or none) when dropped.
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<TraceHandle>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        INSTALLED.with(|slot| *slot.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_nests_and_restores() {
        let a = TraceHandle::new();
        let b = TraceHandle::new();
        assert!(installed().is_none());
        {
            let _ga = install(&a);
            assert!(installed().unwrap().same_ring(&a));
            {
                let _gb = install(&b);
                assert!(installed().unwrap().same_ring(&b));
            }
            assert!(installed().unwrap().same_ring(&a));
        }
        assert!(installed().is_none());
    }

    #[test]
    fn install_restores_across_unwind() {
        let a = TraceHandle::new();
        let caught = std::panic::catch_unwind(|| {
            let _g = install(&a);
            panic!("boom");
        });
        assert!(caught.is_err());
        assert!(installed().is_none());
    }

    #[test]
    fn lifecycle_edges_hit_ring_and_progress() {
        let h = TraceHandle::new();
        h.record_lifecycle(JobPhase::Dispatched);
        h.publish_poll(1 << 16);
        h.record_lifecycle(JobPhase::Completed);
        let s = h.progress().snapshot();
        assert_eq!(s.phase, JobPhase::Completed);
        assert_eq!(s.cycles, 1 << 16);
        assert_eq!(s.polls, 1);
        let kinds: Vec<&str> = h.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, vec!["dispatched", "poll", "completed"]);
        let dump = h.dump_json("job-1");
        assert!(dump.contains("\"kind\":\"completed\""));
    }

    #[test]
    fn clones_share_the_ring() {
        let h = TraceHandle::new();
        let c = h.clone();
        c.record(5, FlightKind::Refresh, 0, 0);
        assert!(h.same_ring(&c));
        assert_eq!(h.events().len(), 1);
        let other = TraceHandle::new();
        other.record(1, FlightKind::Refresh, 1, 0);
        assert!(!h.same_ring(&other));
        h.merge_ring_from(&other);
        assert_eq!(h.events().len(), 2);
    }
}
