//! The flight recorder: a fixed-capacity ring of recent trace events.
//!
//! A [`FlightRecorder`] is the black box a long-running job carries: it
//! holds the most recent [`FlightEvent`]s — structural probe events (tile
//! phases, refreshes), job-lifecycle edges and poll-boundary marks — each
//! stamped with both the wall clock (milliseconds since the recorder's
//! owner was created) and the simulated cycle. Capacity is fixed at
//! construction; once full, every push overwrites the oldest event and
//! bumps [`FlightRecorder::dropped`], so memory stays bounded no matter
//! how long a sweep runs. When a worker dies mid-job the ring is dumped to
//! a `flight-<job>.json` file whose tail is the job's last observable
//! moments.
//!
//! The recorder is pure data — no clocks, no locks — so its cap and
//! overwrite-oldest semantics can be pinned down by property tests.

use mnpu_probe::{JobPhase, Phase};
use std::collections::VecDeque;

/// Default ring capacity (events) when a service does not configure one.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What kind of moment a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A tile phase opened (`core` = owning core, `id` = flat tile index).
    PhaseBegin(Phase),
    /// A tile phase closed.
    PhaseEnd(Phase),
    /// An all-bank DRAM refresh blocked a channel (`core` = channel).
    Refresh,
    /// A serve-mode job entered the scheduler queue (`id` = job id).
    JobArrive,
    /// A serve-mode job was bound to `core` (`id` = job id).
    JobDispatch,
    /// A serve-mode job completed on `core` (`id` = job id).
    JobComplete,
    /// A driver poll boundary; `cycle` is the simulation clock at the poll.
    Poll,
    /// A service-level lifecycle edge (dispatched, checkpointed, failed…).
    Lifecycle(JobPhase),
}

impl FlightKind {
    /// Stable lowercase name used in the JSON dump.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::PhaseBegin(Phase::Load) => "load_begin",
            FlightKind::PhaseBegin(Phase::Compute) => "compute_begin",
            FlightKind::PhaseBegin(Phase::Store) => "store_begin",
            FlightKind::PhaseEnd(Phase::Load) => "load_end",
            FlightKind::PhaseEnd(Phase::Compute) => "compute_end",
            FlightKind::PhaseEnd(Phase::Store) => "store_end",
            FlightKind::Refresh => "refresh",
            FlightKind::JobArrive => "job_arrive",
            FlightKind::JobDispatch => "job_dispatch",
            FlightKind::JobComplete => "job_complete",
            FlightKind::Poll => "poll",
            FlightKind::Lifecycle(p) => p.as_str(),
        }
    }
}

/// One recorded moment: double-stamped (wall + sim), sequence-numbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number, never reused; gaps in a dump reveal how
    /// many events the ring overwrote between survivors.
    pub seq: u64,
    /// Milliseconds since the owning telemetry handle was created.
    pub wall_ms: u64,
    /// Simulated cycle (0 for service-side lifecycle edges).
    pub cycle: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Owning core / channel / worker, by kind.
    pub core: u32,
    /// Kind-specific id (tile index, serve job id, poll count).
    pub id: u64,
}

impl FlightEvent {
    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"wall_ms\":{},\"cycle\":{},\"kind\":\"{}\",\"core\":{},\"id\":{}}}",
            self.seq,
            self.wall_ms,
            self.cycle,
            self.kind.label(),
            self.core,
            self.id
        )
    }
}

/// The fixed-capacity, overwrite-oldest event ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<FlightEvent>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// An empty ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder { cap, next_seq: 0, dropped: 0, buf: VecDeque::with_capacity(cap) }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first push.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Record one event, assigning it the next sequence number. At
    /// capacity, the oldest event is overwritten.
    pub fn push(&mut self, wall_ms: u64, cycle: u64, kind: FlightKind, core: u32, id: u64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back(FlightEvent { seq, wall_ms, cycle, kind, core, id });
    }

    /// The surviving events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.buf.iter().copied().collect()
    }

    /// Fold another ring's surviving events into this one, keeping the
    /// merged stream ordered by simulated cycle (stable for ties). Used
    /// when the engine-side and memory-side probe halves recorded into
    /// separate rings (no shared handle installed).
    pub fn absorb(&mut self, other: &FlightRecorder) {
        if other.buf.is_empty() {
            return;
        }
        let mut merged: Vec<FlightEvent> =
            self.buf.iter().chain(other.buf.iter()).copied().collect();
        merged.sort_by_key(|e| (e.cycle, e.wall_ms, e.seq));
        self.dropped += other.dropped + merged.len().saturating_sub(self.cap) as u64;
        self.next_seq = self.next_seq.max(other.next_seq);
        let skip = merged.len().saturating_sub(self.cap);
        self.buf.clear();
        self.buf.extend(merged.into_iter().skip(skip));
    }

    /// The black-box dump: a self-describing JSON document with the ring's
    /// surviving events oldest-first.
    pub fn to_json(&self, job: &str) -> String {
        let events: Vec<String> = self.buf.iter().map(FlightEvent::to_json).collect();
        format!(
            "{{\"format\":\"mnpu-flight\",\"version\":1,\"job\":\"{}\",\"capacity\":{},\
             \"pushed\":{},\"dropped\":{},\"events\":[{}]}}",
            job,
            self.cap,
            self.next_seq,
            self.dropped,
            events.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(r: &mut FlightRecorder, n: u64) {
        for i in 0..n {
            r.push(i, i * 10, FlightKind::Poll, 0, i);
        }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut r = FlightRecorder::new(4);
        push_n(&mut r, 10);
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.pushed(), 10);
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        push_n(&mut r, 3);
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].seq, 2);
    }

    #[test]
    fn dump_is_self_describing() {
        let mut r = FlightRecorder::new(8);
        r.push(5, 100, FlightKind::PhaseBegin(Phase::Compute), 2, 7);
        r.push(6, 200, FlightKind::Lifecycle(JobPhase::Failed), 0, 0);
        let doc = r.to_json("job-3");
        assert!(doc.contains("\"format\":\"mnpu-flight\""));
        assert!(doc.contains("\"job\":\"job-3\""));
        assert!(doc.contains("\"kind\":\"compute_begin\""));
        assert!(doc.contains("\"kind\":\"failed\""));
        assert!(doc.contains("\"capacity\":8"));
    }

    #[test]
    fn absorb_merges_by_cycle_and_respects_cap() {
        let mut a = FlightRecorder::new(4);
        let mut b = FlightRecorder::new(4);
        a.push(0, 100, FlightKind::Poll, 0, 0);
        a.push(0, 300, FlightKind::Poll, 0, 1);
        b.push(0, 200, FlightKind::Refresh, 1, 0);
        b.push(0, 400, FlightKind::Refresh, 1, 1);
        b.push(0, 500, FlightKind::Refresh, 1, 2);
        a.absorb(&b);
        assert_eq!(a.len(), 4);
        let cycles: Vec<u64> = a.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![200, 300, 400, 500]);
        assert_eq!(a.dropped(), 1);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The deflake/bound contract: whatever the push count and
        /// capacity, the ring holds at most `cap` events, they are exactly
        /// the newest `min(n, cap)` pushes in order, and the dropped
        /// counter accounts for every overwritten event.
        #[test]
        fn prop_cap_and_overwrite_oldest(cap in 0usize..64, n in 0u64..512) {
            let mut r = FlightRecorder::new(cap);
            let cap = cap.max(1);
            for i in 0..n {
                r.push(i, i, FlightKind::Poll, 0, i);
            }
            prop_assert!(r.len() <= cap);
            prop_assert_eq!(r.len() as u64, n.min(cap as u64));
            prop_assert_eq!(r.dropped(), n.saturating_sub(cap as u64));
            prop_assert_eq!(r.pushed(), n);
            let first = n.saturating_sub(cap as u64);
            let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
            let want: Vec<u64> = (first..n).collect();
            prop_assert_eq!(seqs, want);
        }

        /// Memory never grows past the capacity, even across interleaved
        /// pushes of every kind.
        #[test]
        fn prop_dump_counts_survivors(cap in 1usize..32, n in 0u64..200) {
            let mut r = FlightRecorder::new(cap);
            for i in 0..n {
                let kind = match i % 3 {
                    0 => FlightKind::Poll,
                    1 => FlightKind::Refresh,
                    _ => FlightKind::PhaseBegin(Phase::Load),
                };
                r.push(i, i, kind, (i % 4) as u32, i);
            }
            let doc = r.to_json("job-1");
            prop_assert!(doc.contains(&format!("\"dropped\":{}", r.dropped())));
            let survivors = doc.matches("\"seq\":").count();
            prop_assert_eq!(survivors, r.len());
        }
    }
}
