//! Live progress telemetry: a lock-free cell a running job publishes into
//! and an HTTP handler reads from.
//!
//! A [`ProgressCell`] is a bundle of atomics. The worker publishes at its
//! poll boundary (every 2^16 simulated cycles) and the probe folds in its
//! stall/traffic deltas at the same granularity; readers take a
//! [`ProgressSnapshot`] without blocking the run. Each field is
//! individually consistent (a reader may observe fields from two adjacent
//! polls, never a torn value), and the cycle counter is monotone — the
//! property the conformance suite polls for.

use mnpu_probe::JobPhase;
use std::sync::atomic::{AtomicU64, Ordering};

/// Encode a lifecycle phase for atomic storage.
pub(crate) fn phase_code(p: JobPhase) -> u64 {
    match p {
        JobPhase::Submitted => 0,
        JobPhase::Dispatched => 1,
        JobPhase::Checkpointed => 2,
        JobPhase::Resumed => 3,
        JobPhase::Completed => 4,
        JobPhase::Cancelled => 5,
        JobPhase::OverBudget => 6,
        JobPhase::Failed => 7,
        JobPhase::Suspended => 8,
    }
}

fn phase_from_code(c: u64) -> JobPhase {
    match c {
        1 => JobPhase::Dispatched,
        2 => JobPhase::Checkpointed,
        3 => JobPhase::Resumed,
        4 => JobPhase::Completed,
        5 => JobPhase::Cancelled,
        6 => JobPhase::OverBudget,
        7 => JobPhase::Failed,
        8 => JobPhase::Suspended,
        _ => JobPhase::Submitted,
    }
}

/// Per-component stall attribution, in simulated cycles, integrated from
/// the engine's `CoreState` samples (summed over cores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallSnapshot {
    /// Cycles with the systolic array busy.
    pub compute: u64,
    /// Cycles stalled on address translation (shared-TLB/PTW pressure).
    pub wait_translation: u64,
    /// Cycles stalled on tile loads (DRAM pressure).
    pub wait_load: u64,
    /// Cycles stalled draining stores.
    pub wait_store: u64,
}

/// Dense-event traffic counters (the events too frequent to ring-buffer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// DRAM commands serviced (row hits + misses + conflicts).
    pub dram_txns: u64,
    /// TLB lookups that hit.
    pub tlb_hits: u64,
    /// TLB lookups that missed.
    pub tlb_misses: u64,
    /// Page-table walks started.
    pub walks: u64,
    /// DMA transactions bounced off a full DRAM queue.
    pub dma_retries: u64,
    /// Walks stalled on an exhausted walker pool.
    pub walker_stalls: u64,
}

/// A coherent-enough view of a job's live progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    /// Simulated cycles completed so far (monotone within a job).
    pub cycles: u64,
    /// Poll boundaries crossed so far.
    pub polls: u64,
    /// The job's current lifecycle phase.
    pub phase: JobPhase,
    /// Wall milliseconds since the telemetry handle was created.
    pub wall_ms: u64,
    /// Simulated cycles per wall-clock second, cumulative over the run.
    pub cycles_per_sec: f64,
    /// Stall attribution so far.
    pub stall: StallSnapshot,
    /// Traffic counters so far.
    pub traffic: TrafficSnapshot,
    /// Sweep jobs: simulations finished so far (0 for facade jobs).
    pub sweep_sims: u64,
    /// Sweep jobs: execution units finished so far.
    pub sweep_units: u64,
}

impl ProgressSnapshot {
    /// Render as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycles\":{},\"polls\":{},\"phase\":\"{}\",\"wall_ms\":{},\
             \"cycles_per_sec\":{:.1},\"stall\":{{\"compute\":{},\"wait_translation\":{},\
             \"wait_load\":{},\"wait_store\":{}}},\"traffic\":{{\"dram_txns\":{},\
             \"tlb_hits\":{},\"tlb_misses\":{},\"walks\":{},\"dma_retries\":{},\
             \"walker_stalls\":{}}},\"sweep\":{{\"sims\":{},\"units\":{}}}}}",
            self.cycles,
            self.polls,
            self.phase.as_str(),
            self.wall_ms,
            self.cycles_per_sec,
            self.stall.compute,
            self.stall.wait_translation,
            self.stall.wait_load,
            self.stall.wait_store,
            self.traffic.dram_txns,
            self.traffic.tlb_hits,
            self.traffic.tlb_misses,
            self.traffic.walks,
            self.traffic.dma_retries,
            self.traffic.walker_stalls,
            self.sweep_sims,
            self.sweep_units,
        )
    }
}

/// The lock-free publication cell behind a telemetry handle.
#[derive(Debug, Default)]
pub struct ProgressCell {
    cycles: AtomicU64,
    polls: AtomicU64,
    phase: AtomicU64,
    wall_ms: AtomicU64,
    stall: [AtomicU64; 4],
    traffic: [AtomicU64; 6],
    sweep_sims: AtomicU64,
    sweep_units: AtomicU64,
}

impl ProgressCell {
    /// Publish a poll boundary: the driver's authoritative cycle count and
    /// the wall clock it was observed at. Cycles are monotone by
    /// construction (`fetch_max`), so a reader never sees them go back.
    pub fn publish_poll(&self, cycles: u64, wall_ms: u64) {
        self.cycles.fetch_max(cycles, Ordering::Relaxed);
        self.polls.fetch_add(1, Ordering::Relaxed);
        self.wall_ms.fetch_max(wall_ms, Ordering::Relaxed);
    }

    /// Record the job's lifecycle phase.
    pub fn set_phase(&self, phase: JobPhase) {
        self.phase.store(phase_code(phase), Ordering::Relaxed);
    }

    /// Fold stall-attribution deltas in (probe-side, per publish window).
    pub fn add_stall(&self, delta: &StallSnapshot) {
        self.stall[0].fetch_add(delta.compute, Ordering::Relaxed);
        self.stall[1].fetch_add(delta.wait_translation, Ordering::Relaxed);
        self.stall[2].fetch_add(delta.wait_load, Ordering::Relaxed);
        self.stall[3].fetch_add(delta.wait_store, Ordering::Relaxed);
    }

    /// Fold traffic-counter deltas in (probe-side, per publish window).
    pub fn add_traffic(&self, delta: &TrafficSnapshot) {
        self.traffic[0].fetch_add(delta.dram_txns, Ordering::Relaxed);
        self.traffic[1].fetch_add(delta.tlb_hits, Ordering::Relaxed);
        self.traffic[2].fetch_add(delta.tlb_misses, Ordering::Relaxed);
        self.traffic[3].fetch_add(delta.walks, Ordering::Relaxed);
        self.traffic[4].fetch_add(delta.dma_retries, Ordering::Relaxed);
        self.traffic[5].fetch_add(delta.walker_stalls, Ordering::Relaxed);
    }

    /// Publish sweep-level progress (sims / execution units finished) and
    /// the accumulated simulated cycles.
    pub fn publish_sweep(&self, sims: u64, units: u64, cycles: u64, wall_ms: u64) {
        self.sweep_sims.fetch_max(sims, Ordering::Relaxed);
        self.sweep_units.fetch_max(units, Ordering::Relaxed);
        self.publish_poll(cycles, wall_ms);
    }

    /// Take a snapshot. Fields may straddle two publications; each field
    /// on its own is consistent and `cycles` is monotone across reads.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let cycles = self.cycles.load(Ordering::Relaxed);
        let wall_ms = self.wall_ms.load(Ordering::Relaxed);
        let rate = if wall_ms == 0 { 0.0 } else { cycles as f64 / (wall_ms as f64 / 1000.0) };
        ProgressSnapshot {
            cycles,
            polls: self.polls.load(Ordering::Relaxed),
            phase: phase_from_code(self.phase.load(Ordering::Relaxed)),
            wall_ms,
            cycles_per_sec: rate,
            stall: StallSnapshot {
                compute: self.stall[0].load(Ordering::Relaxed),
                wait_translation: self.stall[1].load(Ordering::Relaxed),
                wait_load: self.stall[2].load(Ordering::Relaxed),
                wait_store: self.stall[3].load(Ordering::Relaxed),
            },
            traffic: TrafficSnapshot {
                dram_txns: self.traffic[0].load(Ordering::Relaxed),
                tlb_hits: self.traffic[1].load(Ordering::Relaxed),
                tlb_misses: self.traffic[2].load(Ordering::Relaxed),
                walks: self.traffic[3].load(Ordering::Relaxed),
                dma_retries: self.traffic[4].load(Ordering::Relaxed),
                walker_stalls: self.traffic[5].load(Ordering::Relaxed),
            },
            sweep_sims: self.sweep_sims.load(Ordering::Relaxed),
            sweep_units: self.sweep_units.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_are_monotone_under_stale_publishes() {
        let c = ProgressCell::default();
        c.publish_poll(1000, 5);
        c.publish_poll(500, 3); // a stale publish must not move anything back
        let s = c.snapshot();
        assert_eq!(s.cycles, 1000);
        assert_eq!(s.wall_ms, 5);
        assert_eq!(s.polls, 2);
    }

    #[test]
    fn phases_round_trip() {
        let c = ProgressCell::default();
        for p in [
            JobPhase::Submitted,
            JobPhase::Dispatched,
            JobPhase::Checkpointed,
            JobPhase::Resumed,
            JobPhase::Completed,
            JobPhase::Cancelled,
            JobPhase::OverBudget,
            JobPhase::Failed,
            JobPhase::Suspended,
        ] {
            c.set_phase(p);
            assert_eq!(c.snapshot().phase, p);
        }
    }

    #[test]
    fn deltas_accumulate_and_render() {
        let c = ProgressCell::default();
        c.add_stall(&StallSnapshot {
            compute: 10,
            wait_translation: 2,
            wait_load: 3,
            wait_store: 1,
        });
        c.add_stall(&StallSnapshot { compute: 5, ..Default::default() });
        c.add_traffic(&TrafficSnapshot { dram_txns: 7, tlb_hits: 4, ..Default::default() });
        c.publish_poll(2000, 2);
        let s = c.snapshot();
        assert_eq!(s.stall.compute, 15);
        assert_eq!(s.stall.wait_load, 3);
        assert_eq!(s.traffic.dram_txns, 7);
        assert!(s.cycles_per_sec > 0.0);
        let j = s.to_json();
        assert!(j.contains("\"cycles\":2000"));
        assert!(j.contains("\"compute\":15"));
        assert!(j.contains("\"dram_txns\":7"));
    }

    #[test]
    fn sweep_progress_publishes() {
        let c = ProgressCell::default();
        c.publish_sweep(3, 2, 1_000_000, 10);
        let s = c.snapshot();
        assert_eq!((s.sweep_sims, s.sweep_units), (3, 2));
        assert_eq!(s.cycles, 1_000_000);
    }
}
