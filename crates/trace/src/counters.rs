//! Process-global simulator-internal counters surfaced at `/metrics`.
//!
//! These count events that happen *below* the service's job lifecycle —
//! harness run-cache hits, simulations avoided by prefix sharing, DRAM
//! steady-state fast-forward commits — and therefore cannot live in
//! `ServiceStats` (which is owned by the daemon's state lock). They are
//! plain relaxed atomics: cheap enough for the hot paths that bump them,
//! monotone so a Prometheus scrape can treat them as counters, and global
//! so the bench harness and the engine can report without plumbing a
//! handle through every constructor.

use std::sync::atomic::{AtomicU64, Ordering};

static RUN_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PREFIX_SHARE_SIMS: AtomicU64 = AtomicU64::new(0);
static FASTFWD_COMMITS: AtomicU64 = AtomicU64::new(0);

/// One harness run-cache hit (a memoized per-core cycle vector was reused
/// instead of re-simulating).
pub fn add_run_cache_hit() {
    RUN_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// `n` simulations were serviced by one prefix-shared group run (the
/// group's variant count; each variant would otherwise have been a full
/// independent simulation).
pub fn add_prefix_share_sims(n: u64) {
    PREFIX_SHARE_SIMS.fetch_add(n, Ordering::Relaxed);
}

/// `n` DRAM commands were retired through the steady-state fast-forward
/// path (batched commits, reported at the end of a run).
pub fn add_fastfwd_commits(n: u64) {
    FASTFWD_COMMITS.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of every global counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Harness run-cache hits since process start.
    pub run_cache_hits: u64,
    /// Simulations serviced through prefix-shared group runs.
    pub prefix_share_sims: u64,
    /// DRAM commands retired by the fast-forward path.
    pub fastfwd_commits: u64,
}

/// Read all counters (relaxed; each field individually consistent).
pub fn snapshot() -> SimCounters {
    SimCounters {
        run_cache_hits: RUN_CACHE_HITS.load(Ordering::Relaxed),
        prefix_share_sims: PREFIX_SHARE_SIMS.load(Ordering::Relaxed),
        fastfwd_commits: FASTFWD_COMMITS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global and other tests in this binary may
    // bump them concurrently, so assert monotone deltas, not absolutes.
    #[test]
    fn counters_accumulate_monotonically() {
        let before = snapshot();
        add_run_cache_hit();
        add_prefix_share_sims(4);
        add_fastfwd_commits(100);
        let after = snapshot();
        assert!(after.run_cache_hits > before.run_cache_hits);
        assert!(after.prefix_share_sims >= before.prefix_share_sims + 4);
        assert!(after.fastfwd_commits >= before.fastfwd_commits + 100);
    }
}
