//! Chrome-trace export of a flight recorder's contents.
//!
//! Renders the surviving [`FlightEvent`]s as a `chrome://tracing` /
//! Perfetto document: one worker span enclosing one job span on the
//! control lane, one lane per `(core, phase)` pair carrying the matched
//! tile-phase `B`/`E` spans, and instants for the point events (refreshes,
//! serve-queue edges, polls, lifecycle transitions). Timestamps are the
//! recorded simulation cycles, interpreted as microseconds — the exporter
//! visualizes sim time, wall time stays in the `args`.
//!
//! Invariants the test suite pins down: the output parses as JSON, events
//! are `ts`-sorted, every `B` has a matching `E` on its thread, and the
//! job span nests inside the worker span.

use crate::recorder::{FlightEvent, FlightKind};
use mnpu_probe::Phase;
use std::collections::HashMap;

/// The control lane (worker + job spans and all instant events).
const CONTROL_TID: u32 = 1;

fn phase_idx(p: Phase) -> u32 {
    match p {
        Phase::Load => 0,
        Phase::Compute => 1,
        Phase::Store => 2,
    }
}

fn lane_tid(core: u32, p: Phase) -> u32 {
    10 + core * 3 + phase_idx(p)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn span(name: &str, ph: char, ts: u64, tid: u32) -> (u64, String) {
    (
        ts,
        format!(
            "{{\"name\":\"{}\",\"cat\":\"mnpu\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
            escape(name),
            ph,
            ts,
            tid
        ),
    )
}

fn instant(name: &str, ts: u64, id: u64, wall_ms: u64) -> (u64, String) {
    (
        ts,
        format!(
            "{{\"name\":\"{}\",\"cat\":\"mnpu\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\
             \"tid\":{},\"args\":{{\"id\":{},\"wall_ms\":{}}}}}",
            escape(name),
            ts,
            CONTROL_TID,
            id,
            wall_ms
        ),
    )
}

/// Render `events` (a recorder's surviving events, oldest first) as a
/// Chrome-trace JSON document for `job`, attributed to worker `worker`.
pub fn chrome_trace(job: &str, worker: usize, events: &[FlightEvent]) -> String {
    let min_ts = events.iter().map(|e| e.cycle).min().unwrap_or(0);
    let max_ts = events.iter().map(|e| e.cycle).max().unwrap_or(0);

    // Construction order is the nesting order; a stable sort by ts keeps
    // it for ties, so equal-timestamp events stay correctly stacked.
    let mut out: Vec<(u64, String)> = Vec::with_capacity(events.len() + 4);
    out.push(span(&format!("worker-{worker}"), 'B', min_ts, CONTROL_TID));
    out.push(span(job, 'B', min_ts, CONTROL_TID));

    // Per-lane open tile phases (tile id -> begin cycle) and the end of
    // the last emitted span, to drop anything that would overlap it.
    let mut open: HashMap<u32, HashMap<u64, u64>> = HashMap::new();
    let mut lane_end: HashMap<u32, u64> = HashMap::new();

    for e in events {
        match e.kind {
            FlightKind::PhaseBegin(p) => {
                open.entry(lane_tid(e.core, p)).or_default().insert(e.id, e.cycle);
            }
            FlightKind::PhaseEnd(p) => {
                let tid = lane_tid(e.core, p);
                let Some(begin) = open.entry(tid).or_default().remove(&e.id) else { continue };
                // A span overlapping the lane's previous span (possible
                // after ring truncation) would break B/E nesting: drop it.
                if begin < lane_end.get(&tid).copied().unwrap_or(0) {
                    continue;
                }
                lane_end.insert(tid, e.cycle);
                let name = format!("core{}:{}", e.core, p.name());
                out.push(span(&name, 'B', begin, tid));
                out.push(span(&name, 'E', e.cycle, tid));
            }
            _ => out.push(instant(e.kind.label(), e.cycle, e.id, e.wall_ms)),
        }
    }

    out.push(span(job, 'E', max_ts, CONTROL_TID));
    out.push(span(&format!("worker-{worker}"), 'E', max_ts, CONTROL_TID));
    out.sort_by_key(|(ts, _)| *ts);

    let bodies: Vec<String> = out.into_iter().map(|(_, b)| b).collect();
    format!("{{\"traceEvents\":[{}]}}", bodies.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use mnpu_probe::JobPhase;

    fn sample_events() -> Vec<FlightEvent> {
        let mut r = FlightRecorder::new(64);
        r.push(0, 0, FlightKind::Lifecycle(JobPhase::Dispatched), 0, 0);
        r.push(1, 100, FlightKind::PhaseBegin(Phase::Load), 0, 0);
        r.push(2, 250, FlightKind::PhaseEnd(Phase::Load), 0, 0);
        r.push(2, 250, FlightKind::PhaseBegin(Phase::Compute), 0, 0);
        r.push(3, 400, FlightKind::Refresh, 1, 0);
        r.push(4, 600, FlightKind::PhaseEnd(Phase::Compute), 0, 0);
        r.push(5, 700, FlightKind::Poll, 0, 1);
        r.push(6, 700, FlightKind::Lifecycle(JobPhase::Completed), 0, 0);
        r.events()
    }

    #[test]
    fn trace_is_sorted_and_nested() {
        let doc = chrome_trace("job-1", 2, &sample_events());
        // ts values appear in non-decreasing order.
        let ts: Vec<u64> = doc
            .split("\"ts\":")
            .skip(1)
            .map(|s| s.split([',', '}']).next().unwrap().parse().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
        // The control lane opens with worker-then-job and closes in
        // reverse (the job span nests inside the worker span).
        let worker_b = doc.find("\"name\":\"worker-2\",\"cat\":\"mnpu\",\"ph\":\"B\"").unwrap();
        let job_b = doc.find("\"name\":\"job-1\",\"cat\":\"mnpu\",\"ph\":\"B\"").unwrap();
        let job_e = doc.find("\"name\":\"job-1\",\"cat\":\"mnpu\",\"ph\":\"E\"").unwrap();
        let worker_e = doc.find("\"name\":\"worker-2\",\"cat\":\"mnpu\",\"ph\":\"E\"").unwrap();
        assert!(worker_b < job_b && job_b < job_e && job_e < worker_e);
    }

    #[test]
    fn unmatched_phase_edges_are_dropped() {
        let mut r = FlightRecorder::new(8);
        // An end without its begin (lost to ring truncation) and a begin
        // without its end (job died mid-phase).
        r.push(0, 100, FlightKind::PhaseEnd(Phase::Store), 0, 9);
        r.push(1, 200, FlightKind::PhaseBegin(Phase::Load), 1, 3);
        let doc = chrome_trace("job-7", 0, &r.events());
        assert!(!doc.contains("core0:store"));
        assert!(!doc.contains("core1:load"));
        // Only the worker/job control spans survive as B/E.
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 2);
    }
}
