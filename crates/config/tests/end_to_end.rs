//! File-to-simulation integration: write a complete five-file configuration
//! to disk, load it, run the engine, and emit the original-style results.

use mnpu_config::{load_run, write_network, write_results};
use mnpu_engine::Simulation;
use mnpu_model::{zoo, Scale};
use std::fs;
use std::path::{Path, PathBuf};

fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
    let p = dir.join(name);
    fs::write(&p, text).unwrap();
    p
}

#[test]
fn config_files_to_result_files() {
    let dir = std::env::temp_dir().join(format!("mnpu_e2e_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    const ARCH: &str = "rows=32\ncols=32\nspm_bytes=1048576\nfreq_mhz=1000\n";
    const MEM: &str = "tlb_entries=512\ntlb_assoc=8\nptw=2\npage_bytes=4096\n";
    write(&dir, "arch.txt", ARCH);
    let arch_list = write(&dir, "archs.txt", "arch.txt\narch.txt\n");
    write(&dir, "ncf.txt", &write_network(&zoo::ncf(Scale::Bench)));
    write(&dir, "gpt2.txt", &write_network(&zoo::gpt2(Scale::Bench)));
    let net_list = write(&dir, "nets.txt", "ncf.txt\ngpt2.txt\n");
    write(&dir, "mem.txt", MEM);
    let mem_list = write(&dir, "mems.txt", "mem.txt\nmem.txt\n");
    let dram = write(&dir, "dram.cfg", "preset=bench\nchannels=8\nsharing=+DW\n");
    let misc = write(&dir, "misc.cfg", "iterations=1\ntranslation=true\n");

    let spec = load_run(&arch_list, &net_list, &dram, &mem_list, &misc).unwrap();
    let report = Simulation::execute_networks(&spec.system, &spec.networks);
    assert_eq!(report.cores.len(), 2);
    assert!(report.cores.iter().all(|c| c.cycles > 0));

    let out = dir.join("out");
    let files = write_results(&out, "arch", &report).unwrap();
    assert_eq!(files.len(), 8);
    for f in &files {
        assert!(f.exists(), "{} missing", f.display());
        assert!(!fs::read_to_string(f).unwrap().trim().is_empty());
    }

    // The CLI-visible result equals a direct API run of the same spec.
    let direct = Simulation::execute_networks(&spec.system, &spec.networks);
    assert_eq!(direct.cores[0].cycles, report.cores[0].cycles);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn file_config_equals_preset_config() {
    // A hand-written dram/npumem/arch file set reproducing
    // SystemConfig::bench(2, +DWT) must simulate identically to the preset.
    use mnpu_engine::{SharingLevel, SystemConfig};

    let dir = std::env::temp_dir().join(format!("mnpu_e2e_eq_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    write(
        &dir,
        "arch.txt",
        "rows=32\ncols=32\nspm_bytes=1048576\nfreq_mhz=1000\nmax_outstanding=256\n",
    );
    let arch_list = write(&dir, "archs.txt", "arch.txt\narch.txt\n");
    write(&dir, "ncf.txt", &write_network(&zoo::ncf(Scale::Bench)));
    let net_list = write(&dir, "nets.txt", "ncf.txt\nncf.txt\n");
    write(&dir, "mem.txt", "tlb_entries=512\ntlb_assoc=8\nptw=2\npage_bytes=4096\n");
    let mem_list = write(&dir, "mems.txt", "mem.txt\nmem.txt\n");
    let dram = write(&dir, "dram.cfg", "preset=bench\nchannels=8\nsharing=+DWT\n");
    let misc = write(&dir, "misc.cfg", "");

    let spec = load_run(&arch_list, &net_list, &dram, &mem_list, &misc).unwrap();
    let from_files = Simulation::execute_networks(&spec.system, &spec.networks);

    let preset = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let nets = [zoo::ncf(Scale::Bench), zoo::ncf(Scale::Bench)];
    let from_preset = Simulation::execute_networks(&preset, &nets);

    assert_eq!(from_files.cores[0].cycles, from_preset.cores[0].cycles);
    assert_eq!(from_files.cores[1].cycles, from_preset.cores[1].cycles);
    let _ = fs::remove_dir_all(&dir);
}
