//! Parser robustness: arbitrary text never panics any parser; valid inputs
//! round-trip.

use mnpu_config::{
    parse_arch, parse_dram, parse_misc, parse_network, parse_npumem, parse_scalesim,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// No parser may panic on arbitrary input — errors only.
    #[test]
    fn prop_parsers_never_panic(text in "\\PC{0,300}") {
        let _ = parse_arch(&text);
        let _ = parse_network("fuzz", &text);
        let _ = parse_npumem(&text);
        let _ = parse_dram(&text);
        let _ = parse_misc(&text);
        let _ = parse_scalesim("fuzz", &text);
    }

    /// Key-value noise around valid keys still parses the valid keys.
    #[test]
    fn prop_kv_with_noise_lines(rows in 1u64..200, cols in 1u64..200, spm in 8192u64..(64 << 20)) {
        let text = format!(
            "# generated\nrows = {rows}\n\ncols={cols}\n  spm_bytes =  {spm}  # inline\n"
        );
        let arch = parse_arch(&text).unwrap();
        prop_assert_eq!(arch.rows, rows);
        prop_assert_eq!(arch.cols, cols);
        prop_assert_eq!(arch.spm_bytes, spm);
    }

    /// Random GEMM layer lines parse back to the same dimensions.
    #[test]
    fn prop_gemm_lines_roundtrip(dims in proptest::collection::vec((1u64..4096, 1u64..4096, 1u64..4096), 1..10)) {
        let mut text = String::new();
        for (i, (m, k, n)) in dims.iter().enumerate() {
            text.push_str(&format!("l{i}, gemm, m={m}, k={k}, n={n}\n"));
        }
        let net = parse_network("gen", &text).unwrap();
        prop_assert_eq!(net.num_layers(), dims.len());
        for (layer, (m, k, n)) in net.iter().zip(&dims) {
            let g = layer.to_gemm();
            prop_assert_eq!((g.m, g.k, g.n), (*m, *k, *n));
        }
    }

    /// Random SCALE-Sim conv rows parse into convs with the same dims.
    #[test]
    fn prop_scalesim_conv_rows(rows in proptest::collection::vec((2u64..256, 1u64..8, 1u64..128, 1u64..128, 1u64..4), 1..8)) {
        let mut text = String::new();
        for (i, (hw, k, c, f, s)) in rows.iter().enumerate() {
            let k = (*k).min(*hw);
            text.push_str(&format!("Conv{i}, {hw}, {hw}, {k}, {k}, {c}, {f}, {s},\n"));
        }
        let net = parse_scalesim("gen", &text).unwrap();
        prop_assert_eq!(net.num_layers(), rows.len());
    }
}
