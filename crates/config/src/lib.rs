//! Text-file configuration frontend matching the original mNPUsim CLI.
//!
//! The original simulator is driven by five kinds of configuration files
//! (§3.2.1 of the paper):
//!
//! 1. `network_config` — DNN topology (one file per core, listed in a
//!    *network list* file);
//! 2. `arch_config` — systolic array / SPM / clock (per core, listed);
//! 3. `npumem_config` — TLB and PTW parameters (per core, listed);
//! 4. `dram_config` — the shared DRAM device and the resource-sharing level;
//! 5. `misc_config` — execution mode: start cycles, iterations, walker
//!    partitioning, translation switch.
//!
//! This crate parses those formats (documented per parser), converts them
//! into the engine's typed configuration ([`build_system`]), and writes the
//! original's result files ([`write_results`]): `avg_cycle_*`,
//! `execution_cycle_*`, `memory_footprint_*` and `utilization_*`.
//!
//! All formats are line-based `key = value` or CSV-ish layer lines; `#`
//! starts a comment. Parse errors carry the file/line context in
//! [`ConfigError`].
//!
//! # Example
//!
//! ```
//! use mnpu_config::{parse_arch, parse_network};
//!
//! let arch = parse_arch("rows = 16\ncols = 16\nspm_bytes = 1048576\nfreq_mhz = 1000")?;
//! assert_eq!(arch.rows, 16);
//! let net = parse_network("mlp", "fc1, gemm, m=1, k=784, n=128")?;
//! assert_eq!(net.num_layers(), 1);
//! # Ok::<(), mnpu_config::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod kv;
mod parsers;
mod results;
mod runspec;
pub mod scalesim;
mod scenario;

pub use error::ConfigError;
pub use parsers::{
    parse_arch, parse_dram, parse_misc, parse_network, parse_npumem, write_network, DramFileConfig,
    MiscConfig,
};
pub use results::{result_file_names, write_intermediate, write_request_logs, write_results};
pub use runspec::{build_system, load_run, RunSpec};
pub use scalesim::{parse_scalesim, write_scalesim};
pub use scenario::{load_scenario, parse_scenario, ArrivalSpec, JobSpec, PolicySpec, ScenarioSpec};
