//! Line-based `key = value` scanning shared by all parsers.

use crate::error::ConfigError;
use std::collections::HashMap;

/// A parsed `key = value` file: keys are lower-cased; `#` starts a comment.
#[derive(Debug)]
pub(crate) struct KvFile {
    file: String,
    entries: HashMap<String, (usize, String)>,
}

impl KvFile {
    pub(crate) fn parse(file: &str, text: &str) -> Result<Self, ConfigError> {
        let mut entries = HashMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(ConfigError::parse(
                    file,
                    i + 1,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let key = k.trim().to_ascii_lowercase();
            if entries.insert(key.clone(), (i + 1, v.trim().to_string())).is_some() {
                return Err(ConfigError::parse(file, i + 1, format!("duplicate key `{key}`")));
            }
        }
        Ok(KvFile { file: file.to_string(), entries })
    }

    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|(_, v)| v.as_str())
    }

    pub(crate) fn require(&self, key: &str) -> Result<&str, ConfigError> {
        self.get(key).ok_or_else(|| {
            ConfigError::parse(&self.file, 0, format!("missing required key `{key}`"))
        })
    }

    pub(crate) fn u64_or(&self, key: &str, default: u64) -> Result<u64, ConfigError> {
        match self.entries.get(key) {
            None => Ok(default),
            Some((line, v)) => v.parse().map_err(|_| {
                ConfigError::parse(
                    &self.file,
                    *line,
                    format!("`{key}` must be an integer, got `{v}`"),
                )
            }),
        }
    }

    pub(crate) fn u64_req(&self, key: &str) -> Result<u64, ConfigError> {
        let v = self.require(key)?;
        let (line, _) = self.entries[key];
        v.parse().map_err(|_| {
            ConfigError::parse(&self.file, line, format!("`{key}` must be an integer, got `{v}`"))
        })
    }

    pub(crate) fn bool_or(&self, key: &str, default: bool) -> Result<bool, ConfigError> {
        match self.entries.get(key) {
            None => Ok(default),
            Some((line, v)) => match v.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" | "on" => Ok(true),
                "false" | "0" | "no" | "off" => Ok(false),
                _ => Err(ConfigError::parse(
                    &self.file,
                    *line,
                    format!("`{key}` must be a boolean, got `{v}`"),
                )),
            },
        }
    }

    /// Comma-separated integer list, e.g. `ptw_partition = 2,14`.
    pub(crate) fn u64_list(&self, key: &str) -> Result<Option<Vec<u64>>, ConfigError> {
        match self.entries.get(key) {
            None => Ok(None),
            Some((line, v)) => v
                .split(',')
                .map(|s| {
                    s.trim().parse().map_err(|_| {
                        ConfigError::parse(
                            &self.file,
                            *line,
                            format!("`{key}` must be a list of integers, got `{v}`"),
                        )
                    })
                })
                .collect::<Result<Vec<u64>, _>>()
                .map(Some),
        }
    }

    pub(crate) fn file(&self) -> &str {
        &self.file
    }

    pub(crate) fn line_of(&self, key: &str) -> usize {
        self.entries.get(key).map(|(l, _)| *l).unwrap_or(0)
    }
}

/// Split an attribute list like `in_hw=224, out_c=96` into pairs.
pub(crate) fn attr_pairs<'a>(
    file: &str,
    line: usize,
    fields: impl Iterator<Item = &'a str>,
) -> Result<HashMap<String, u64>, ConfigError> {
    let mut out = HashMap::new();
    for f in fields {
        let f = f.trim();
        if f.is_empty() {
            continue;
        }
        let Some((k, v)) = f.split_once('=') else {
            return Err(ConfigError::parse(
                file,
                line,
                format!("expected `attr=value`, got `{f}`"),
            ));
        };
        let value: u64 = v.trim().parse().map_err(|_| {
            ConfigError::parse(
                file,
                line,
                format!("attribute `{}` must be an integer, got `{}`", k.trim(), v.trim()),
            )
        })?;
        out.insert(k.trim().to_ascii_lowercase(), value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_keys_comments_and_blank_lines() {
        let kv = KvFile::parse("t", "# header\n\nrows = 16 # inline\ncols=32\n").unwrap();
        assert_eq!(kv.get("rows"), Some("16"));
        assert_eq!(kv.u64_req("cols").unwrap(), 32);
        assert_eq!(kv.get("missing"), None);
    }

    #[test]
    fn duplicate_key_rejected() {
        let e = KvFile::parse("t", "a = 1\na = 2").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn bad_integer_reports_line() {
        let kv = KvFile::parse("t", "rows = abc").unwrap();
        let e = kv.u64_req("rows").unwrap_err();
        assert!(e.to_string().contains("t:1"));
    }

    #[test]
    fn bool_and_list_parsing() {
        let kv = KvFile::parse("t", "flag = yes\nsplit = 2, 14").unwrap();
        assert!(kv.bool_or("flag", false).unwrap());
        assert!(!kv.bool_or("other", false).unwrap());
        assert_eq!(kv.u64_list("split").unwrap(), Some(vec![2, 14]));
        assert_eq!(kv.u64_list("nope").unwrap(), None);
    }

    #[test]
    fn attr_pairs_parse() {
        let m = attr_pairs("t", 1, "in_hw=224, out_c = 96".split(',')).unwrap();
        assert_eq!(m["in_hw"], 224);
        assert_eq!(m["out_c"], 96);
        assert!(attr_pairs("t", 1, "oops".split(',')).is_err());
    }
}
