//! Parse/IO error type with file and line context.

use std::error::Error;
use std::fmt;
use std::io;

/// Why a configuration could not be loaded.
#[derive(Debug)]
pub enum ConfigError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Underlying error.
        source: io::Error,
    },
    /// A line failed to parse.
    Parse {
        /// File (or logical source) of the bad line.
        file: String,
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Files parsed but are mutually inconsistent (e.g. per-core list
    /// lengths differ).
    Inconsistent(String),
    /// A scenario's `job` line referenced a workload the model zoo does not
    /// know.
    UnknownWorkload {
        /// File (or logical source) of the bad line.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The unrecognized workload name.
        name: String,
    },
    /// A scenario named a core-assignment policy that does not exist.
    UnknownPolicy {
        /// File (or logical source) of the bad line.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The unrecognized policy name.
        name: String,
    },
    /// A scenario named an arrival pattern that does not exist or gave it
    /// malformed parameters.
    BadArrivalPattern {
        /// File (or logical source) of the bad line.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The unrecognized or malformed pattern spec.
        spec: String,
    },
}

impl ConfigError {
    pub(crate) fn parse(file: impl Into<String>, line: usize, message: impl Into<String>) -> Self {
        ConfigError::Parse { file: file.into(), line, message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Io { path, source } => write!(f, "cannot read {path}: {source}"),
            ConfigError::Parse { file, line, message } => {
                write!(f, "{file}:{line}: {message}")
            }
            ConfigError::Inconsistent(m) => write!(f, "inconsistent configuration: {m}"),
            ConfigError::UnknownWorkload { file, line, name } => {
                write!(f, "{file}:{line}: unknown workload `{name}`")
            }
            ConfigError::UnknownPolicy { file, line, name } => {
                write!(f, "{file}:{line}: unknown scheduling policy `{name}`")
            }
            ConfigError::BadArrivalPattern { file, line, spec } => {
                write!(f, "{file}:{line}: bad arrival pattern `{spec}`")
            }
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ConfigError::parse("arch.txt", 3, "bad key");
        assert_eq!(e.to_string(), "arch.txt:3: bad key");
        let e = ConfigError::Inconsistent("2 archs, 3 networks".into());
        assert!(e.to_string().contains("inconsistent"));
    }

    #[test]
    fn error_trait_implemented() {
        let e: Box<dyn Error> = Box::new(ConfigError::parse("x", 1, "y"));
        assert!(e.source().is_none());
    }
}
