//! Parsers for the five configuration-file kinds.

use crate::error::ConfigError;
use crate::kv::{attr_pairs, KvFile};
use mnpu_dram::{AddressMapping, DramConfig};
use mnpu_engine::SharingLevel;
use mnpu_mmu::MmuConfig;
use mnpu_model::{ConvSpec, EmbeddingSpec, GemmSpec, Layer, LayerKind, Network};
use mnpu_systolic::{ArchConfig, Dataflow};

/// Parse an `arch_config` file (per-core compute configuration).
///
/// ```text
/// rows = 128            # systolic array rows
/// cols = 128
/// spm_bytes = 37748736  # on-chip scratchpad
/// freq_mhz = 1000
/// dataflow = output_stationary   # or weight_stationary (optional)
/// max_outstanding = 256          # DMA depth (optional)
/// ```
///
/// # Errors
///
/// Returns [`ConfigError::Parse`] with file/line context.
pub fn parse_arch(text: &str) -> Result<ArchConfig, ConfigError> {
    let kv = KvFile::parse("arch_config", text)?;
    let dataflow = match kv.get("dataflow").unwrap_or("output_stationary") {
        "output_stationary" | "os" => Dataflow::OutputStationary,
        "weight_stationary" | "ws" => Dataflow::WeightStationary,
        other => {
            return Err(ConfigError::parse(
                kv.file(),
                kv.line_of("dataflow"),
                format!("unknown dataflow `{other}`"),
            ))
        }
    };
    let arch = ArchConfig {
        rows: kv.u64_req("rows")?,
        cols: kv.u64_req("cols")?,
        spm_bytes: kv.u64_req("spm_bytes")?,
        freq_mhz: kv.u64_or("freq_mhz", 1000)?,
        dataflow,
        max_outstanding: kv.u64_or("max_outstanding", 256)? as usize,
    };
    arch.validate().map_err(|e| ConfigError::parse(kv.file(), 0, e))?;
    Ok(arch)
}

/// Parse a `network_config` file (DNN topology). One layer per line:
///
/// ```text
/// # name, kind, attributes...
/// conv1, conv, in_hw=224, in_c=3, out_c=96, k=11, stride=4, pad=2
/// fc6,   gemm, m=1, k=9216, n=4096, batch=1
/// emb,   embedding, tables=26, rows=1000000, dim=64, lookups=96, batch=64
/// ```
///
/// Rectangular convolutions use `in_h`/`in_w`/`k_h`/`k_w` instead of
/// `in_hw`/`k`.
///
/// # Errors
///
/// Returns [`ConfigError::Parse`] with file/line context.
pub fn parse_network(name: &str, text: &str) -> Result<Network, ConfigError> {
    let file = format!("network_config({name})");
    let mut layers = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let lname = fields.next().unwrap_or("").trim().to_string();
        let kind = fields.next().unwrap_or("").trim().to_ascii_lowercase();
        if lname.is_empty() || kind.is_empty() {
            return Err(ConfigError::parse(&file, i + 1, "expected `name, kind, attrs...`"));
        }
        let attrs = attr_pairs(&file, i + 1, fields)?;
        let need = |key: &str| {
            attrs.get(key).copied().ok_or_else(|| {
                ConfigError::parse(&file, i + 1, format!("{kind} layer requires `{key}=`"))
            })
        };
        let batch = attrs.get("batch").copied().unwrap_or(1);
        let layer_kind = match kind.as_str() {
            "conv" => {
                let (in_h, in_w) = match attrs.get("in_hw") {
                    Some(&hw) => (hw, hw),
                    None => (need("in_h")?, need("in_w")?),
                };
                let (k_h, k_w) = match attrs.get("k") {
                    Some(&k) => (k, k),
                    None => (need("k_h")?, need("k_w")?),
                };
                LayerKind::Conv(ConvSpec {
                    in_h,
                    in_w,
                    in_c: need("in_c")?,
                    out_c: need("out_c")?,
                    k_h,
                    k_w,
                    stride: attrs.get("stride").copied().unwrap_or(1),
                    padding: attrs.get("pad").copied().unwrap_or(0),
                })
            }
            "gemm" | "fc" => LayerKind::Gemm(GemmSpec::new(need("m")?, need("k")?, need("n")?)),
            "embedding" => LayerKind::Embedding(EmbeddingSpec {
                tables: need("tables")?,
                rows_per_table: need("rows")?,
                embed_dim: need("dim")?,
                lookups: need("lookups")?,
            }),
            other => {
                return Err(ConfigError::parse(
                    &file,
                    i + 1,
                    format!("unknown layer kind `{other}`"),
                ))
            }
        };
        layers.push(Layer::new(lname, layer_kind, batch));
    }
    if layers.is_empty() {
        return Err(ConfigError::parse(&file, 0, "network has no layers"));
    }
    Ok(Network::new(name, layers))
}

/// Serialize a [`Network`] back into the `network_config` format, so the zoo
/// can be exported to files that round-trip through [`parse_network`].
pub fn write_network(net: &Network) -> String {
    let mut out = format!("# network_config for {}\n", net.name());
    for l in net.iter() {
        match *l.kind() {
            LayerKind::Conv(c) => {
                out.push_str(&format!(
                    "{}, conv, in_h={}, in_w={}, in_c={}, out_c={}, k_h={}, k_w={}, stride={}, pad={}, batch={}\n",
                    l.name(), c.in_h, c.in_w, c.in_c, c.out_c, c.k_h, c.k_w, c.stride, c.padding, l.batch()
                ));
            }
            LayerKind::Gemm(g) => {
                out.push_str(&format!(
                    "{}, gemm, m={}, k={}, n={}, batch={}\n",
                    l.name(),
                    g.m,
                    g.k,
                    g.n,
                    l.batch()
                ));
            }
            LayerKind::Embedding(e) => {
                out.push_str(&format!(
                    "{}, embedding, tables={}, rows={}, dim={}, lookups={}, batch={}\n",
                    l.name(),
                    e.tables,
                    e.rows_per_table,
                    e.embed_dim,
                    e.lookups,
                    l.batch()
                ));
            }
        }
    }
    out
}

/// Parse an `npumem_config` file (per-core MMU parameters).
///
/// ```text
/// tlb_entries = 2048
/// tlb_assoc = 8
/// ptw = 8
/// page_bytes = 4096
/// pt_region_bytes = 16777216   # optional
/// ```
///
/// # Errors
///
/// Returns [`ConfigError::Parse`] with file/line context.
pub fn parse_npumem(text: &str) -> Result<MmuConfig, ConfigError> {
    let kv = KvFile::parse("npumem_config", text)?;
    Ok(MmuConfig {
        tlb_entries_per_core: kv.u64_req("tlb_entries")?,
        tlb_assoc: kv.u64_or("tlb_assoc", 8)?,
        ptws_per_core: kv.u64_req("ptw")? as usize,
        page_bytes: kv.u64_or("page_bytes", 4096)?,
        tlb_shared: false,
        ptw_shared: false,
        ptw_partition: None,
        pt_region_bytes: kv.u64_or("pt_region_bytes", 16 << 20)?,
        coalesce_walks: kv.bool_or("coalesce_walks", true)?,
        ptw_bounds: None,
    })
}

/// The parsed `dram_config`: the device plus chip-level sharing options
/// (DRAM is always chip-shared state in mNPUsim, so the sharing level and
/// channel split live here).
#[derive(Debug, Clone, PartialEq)]
pub struct DramFileConfig {
    /// Device configuration (channel count = chip total).
    pub dram: DramConfig,
    /// Resource-sharing level.
    pub sharing: SharingLevel,
    /// Optional unequal static channel split.
    pub channel_partition: Option<Vec<usize>>,
    /// Optional on-chip interconnect (`noc_bytes_per_cycle` +
    /// `noc_hop_latency` keys; both absent = ideal interconnect).
    pub noc: Option<mnpu_noc::NocConfig>,
}

/// Parse a `dram_config` file.
///
/// ```text
/// preset = hbm2            # hbm2 | ddr4 | bench (timing preset)
/// channels = 8             # chip-total channels
/// sharing = +DWT           # Ideal | Static | +D | +DW | +DWT
/// channel_partition = 1,7  # optional, Static only
/// queue_depth = 64         # optional overrides...
/// mapping = block_interleaved   # or row_interleaved
/// ```
///
/// # Errors
///
/// Returns [`ConfigError::Parse`] with file/line context.
pub fn parse_dram(text: &str) -> Result<DramFileConfig, ConfigError> {
    let kv = KvFile::parse("dram_config", text)?;
    let channels = kv.u64_req("channels")? as usize;
    let mut dram = match kv.get("preset").unwrap_or("hbm2") {
        "hbm2" => DramConfig::hbm2(channels),
        "ddr4" => DramConfig::ddr4(channels),
        "bench" => DramConfig::bench(channels),
        other => {
            return Err(ConfigError::parse(
                kv.file(),
                kv.line_of("preset"),
                format!("unknown preset `{other}`"),
            ))
        }
    };
    dram.queue_depth = kv.u64_or("queue_depth", dram.queue_depth as u64)? as usize;
    dram.row_bytes = kv.u64_or("row_bytes", dram.row_bytes)?;
    dram.rows = kv.u64_or("rows", dram.rows)?;
    if let Some(m) = kv.get("mapping") {
        dram.mapping = match m {
            "block_interleaved" => AddressMapping::BlockInterleaved,
            "row_interleaved" => AddressMapping::RowInterleaved,
            other => {
                return Err(ConfigError::parse(
                    kv.file(),
                    kv.line_of("mapping"),
                    format!("unknown mapping `{other}`"),
                ))
            }
        };
    }
    dram.validate().map_err(|e| ConfigError::parse(kv.file(), 0, e))?;

    let sharing = match kv.get("sharing").unwrap_or("+DWT") {
        "Ideal" | "ideal" => SharingLevel::Ideal,
        "Static" | "static" => SharingLevel::Static,
        "+D" | "+d" => SharingLevel::PlusD,
        "+DW" | "+dw" => SharingLevel::PlusDw,
        "+DWT" | "+dwt" => SharingLevel::PlusDwt,
        other => {
            return Err(ConfigError::parse(
                kv.file(),
                kv.line_of("sharing"),
                format!("unknown sharing level `{other}`"),
            ))
        }
    };
    let channel_partition =
        kv.u64_list("channel_partition")?.map(|v| v.into_iter().map(|x| x as usize).collect());
    let noc = match (kv.get("noc_bytes_per_cycle"), kv.get("noc_hop_latency")) {
        (None, None) => None,
        _ => Some(mnpu_noc::NocConfig {
            bytes_per_cycle: kv.u64_or("noc_bytes_per_cycle", 64)?,
            hop_latency: kv.u64_or("noc_hop_latency", 4)?,
        }),
    };
    Ok(DramFileConfig { dram, sharing, channel_partition, noc })
}

/// The parsed `misc_config`: execution mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiscConfig {
    /// Per-core start cycles (empty = all zero).
    pub start_cycles: Vec<u64>,
    /// Iterations of each network.
    pub iterations: u64,
    /// Optional static walker split (the `misc_config` owns PTW partitioning
    /// in the original, matching its appendix).
    pub ptw_partition: Option<Vec<usize>>,
    /// Optional managed walker sharing: per-core minimum and maximum
    /// occupancy of the shared pool (`ptw_min = 1,1` / `ptw_max = 3,3`).
    pub ptw_bounds: Option<mnpu_mmu::PtwBounds>,
    /// Address translation on/off.
    pub translation: bool,
    /// Optional bandwidth-trace window (0 = off).
    pub trace_window: u64,
    /// Optional cycle watchdog (0 = unlimited).
    pub max_cycles: u64,
    /// Record the full request log (see the engine's `request_log` option).
    pub request_log: bool,
}

/// Parse a `misc_config` file.
///
/// ```text
/// start_cycles = 0, 1000   # optional, one per core
/// iterations = 1
/// ptw_partition = 2, 14    # optional static split
/// ptw_min = 1, 1           # optional managed-sharing bounds (with ptw_max)
/// ptw_max = 3, 3
/// translation = true
/// trace_window = 0
/// max_cycles = 0           # watchdog; 0 = unlimited
/// request_log = false      # emit TLB/PTW/DRAM logs
/// ```
///
/// # Errors
///
/// Returns [`ConfigError::Parse`] with file/line context.
pub fn parse_misc(text: &str) -> Result<MiscConfig, ConfigError> {
    let kv = KvFile::parse("misc_config", text)?;
    let to_usize = |v: Vec<u64>| v.into_iter().map(|x| x as usize).collect::<Vec<usize>>();
    let ptw_min = kv.u64_list("ptw_min")?.map(to_usize);
    let ptw_max = kv.u64_list("ptw_max")?.map(to_usize);
    let ptw_bounds = match (ptw_min, ptw_max) {
        (Some(min), Some(max)) => Some(mnpu_mmu::PtwBounds { min, max }),
        (None, None) => None,
        _ => {
            return Err(ConfigError::parse(
                kv.file(),
                kv.line_of("ptw_min").max(kv.line_of("ptw_max")),
                "ptw_min and ptw_max must be given together",
            ))
        }
    };
    Ok(MiscConfig {
        start_cycles: kv.u64_list("start_cycles")?.unwrap_or_default(),
        iterations: kv.u64_or("iterations", 1)?,
        ptw_partition: kv.u64_list("ptw_partition")?.map(to_usize),
        ptw_bounds,
        translation: kv.bool_or("translation", true)?,
        trace_window: kv.u64_or("trace_window", 0)?,
        max_cycles: kv.u64_or("max_cycles", 0)?,
        request_log: kv.bool_or("request_log", false)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_model::{zoo, Scale};

    #[test]
    fn arch_roundtrip_with_defaults() {
        let a = parse_arch("rows=16\ncols = 16\nspm_bytes = 1048576").unwrap();
        assert_eq!(a.rows, 16);
        assert_eq!(a.freq_mhz, 1000);
        assert_eq!(a.dataflow, Dataflow::OutputStationary);
    }

    #[test]
    fn arch_rejects_bad_dataflow_and_missing_keys() {
        assert!(parse_arch("rows=16\ncols=16\nspm_bytes=1048576\ndataflow=banana").is_err());
        let e = parse_arch("rows=16").unwrap_err();
        assert!(e.to_string().contains("cols"));
    }

    #[test]
    fn network_parses_all_layer_kinds() {
        let text = "\
c1, conv, in_hw=32, in_c=3, out_c=8, k=3, stride=1, pad=1
f1, gemm, m=2, k=128, n=64
e1, embedding, tables=4, rows=1000, dim=32, lookups=8, batch=2
";
        let net = parse_network("test", text).unwrap();
        assert_eq!(net.num_layers(), 3);
        assert!(matches!(net.layers()[0].kind(), LayerKind::Conv(_)));
        assert!(matches!(net.layers()[2].kind(), LayerKind::Embedding(_)));
        assert_eq!(net.layers()[2].batch(), 2);
    }

    #[test]
    fn rectangular_conv_supported() {
        let net = parse_network(
            "r",
            "c, conv, in_h=161, in_w=200, in_c=1, out_c=32, k_h=41, k_w=11, stride=2, pad=20",
        )
        .unwrap();
        let LayerKind::Conv(c) = *net.layers()[0].kind() else { panic!() };
        assert_eq!((c.k_h, c.k_w), (41, 11));
    }

    #[test]
    fn zoo_round_trips_through_text() {
        for net in zoo::all(Scale::Bench) {
            let text = write_network(&net);
            let back = parse_network(net.name(), &text).unwrap();
            assert_eq!(&back, &net, "{} round trip", net.name());
        }
    }

    #[test]
    fn network_errors_carry_line_numbers() {
        let e = parse_network("x", "ok, gemm, m=1, k=1, n=1\nbad, conv, in_hw=8").unwrap_err();
        assert!(e.to_string().contains(":2"), "{e}");
        assert!(parse_network("x", "").is_err(), "empty network rejected");
        assert!(parse_network("x", "a, warp, q=1").is_err(), "unknown kind rejected");
    }

    #[test]
    fn npumem_parses() {
        let m = parse_npumem("tlb_entries = 2048\ntlb_assoc=8\nptw = 8\npage_bytes=65536").unwrap();
        assert_eq!(m.tlb_entries_per_core, 2048);
        assert_eq!(m.page_bytes, 65536);
        assert_eq!(m.walk_levels(), 3);
    }

    #[test]
    fn dram_presets_and_sharing() {
        let d = parse_dram("preset=hbm2\nchannels=8\nsharing=+DW").unwrap();
        assert_eq!(d.dram.channels, 8);
        assert_eq!(d.sharing, SharingLevel::PlusDw);
        assert!(d.channel_partition.is_none());

        let d = parse_dram("channels=8\nsharing=Static\nchannel_partition=1,7").unwrap();
        assert_eq!(d.channel_partition, Some(vec![1, 7]));

        assert!(parse_dram("channels=8\nsharing=everything").is_err());
        assert!(parse_dram("channels=8\npreset=rambus").is_err());
    }

    #[test]
    fn misc_defaults_and_overrides() {
        let m = parse_misc("").unwrap();
        assert_eq!(m.iterations, 1);
        assert!(m.translation);
        let m = parse_misc("iterations=3\ntranslation=off\nstart_cycles=0,500\nptw_partition=2,14")
            .unwrap();
        assert_eq!(m.iterations, 3);
        assert!(!m.translation);
        assert_eq!(m.start_cycles, vec![0, 500]);
        assert_eq!(m.ptw_partition, Some(vec![2, 14]));
    }
}
