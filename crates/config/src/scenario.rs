//! Serve-mode scenario files: a chip, a job list, and how jobs arrive.
//!
//! A scenario describes a *dynamic* experiment — jobs arriving over time,
//! queueing for free cores — as opposed to the batch configuration files,
//! which bind one workload per core at cycle 0. The format is the same
//! line-based `key = value` used everywhere else, except that `job` lines
//! may repeat (one per job, in arrival-tiebreak order):
//!
//! ```text
//! # quad-core serve scenario
//! cores   = 4
//! sharing = +DWT          # Ideal | Static | +D | +DW | +DWT
//! preset  = bench         # bench | cloud (chip preset)
//! scale   = bench         # bench | full  (model-zoo scale)
//! seed    = 42            # arrival-generator seed
//! pattern = fixed:1000    # fixed:<inc> | bursty:<burst>:<mean_gap> | explicit
//! policy  = first_free    # first_free | round_robin | predictor | pinned
//! job = ncf
//! job = gpt2 @ 500        # explicit arrival cycle (pattern = explicit)
//! job = yt on 2           # pinned to core 2 (policy = pinned)
//! job = dlrm @ 1500 on 3
//! ```
//!
//! Parsing validates everything it can without running: workload names
//! against the model zoo ([`ConfigError::UnknownWorkload`]), the policy
//! name ([`ConfigError::UnknownPolicy`]), the arrival pattern
//! ([`ConfigError::BadArrivalPattern`]), and the chip through
//! [`mnpu_engine::SystemConfigBuilder`]'s validation. The scheduler in
//! `mnpu-sched` consumes the resulting [`ScenarioSpec`].

use crate::error::ConfigError;
use mnpu_engine::{SharingLevel, SystemConfig};
use mnpu_model::{zoo, Scale};

/// How jobs arrive, before the scheduler turns it into concrete cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// Every `job` line carries its own `@ <cycle>`; lines without one
    /// arrive at cycle 0.
    Explicit,
    /// Open-loop: job *i* arrives at `i * increment`.
    FixedIncrement {
        /// Gap between consecutive arrivals, in global cycles.
        increment: u64,
    },
    /// Open-loop bursts: groups of `burst` jobs arrive together, with a
    /// seeded-random gap (mean `mean_gap` cycles) between groups.
    Bursty {
        /// Jobs per burst (at least 1).
        burst: usize,
        /// Mean gap between bursts, in global cycles.
        mean_gap: u64,
    },
}

/// Which core-assignment policy the scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Dispatch the queue head to the lowest-numbered free core.
    FirstFree,
    /// Dispatch the queue head to free cores in rotating order.
    RoundRobin,
    /// Use `mnpu-predict`'s slowdown model to pick, among queued jobs, the
    /// one least destructive to the currently running set.
    Predictor,
    /// Honor each job's `on <core>` pin; jobs wait for their named core.
    Pinned,
}

/// One `job` line: a zoo workload, optionally with an explicit arrival
/// cycle and a core pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Model-zoo short name (validated at parse time).
    pub network: String,
    /// Explicit arrival cycle (`@ <cycle>`), used by
    /// [`ArrivalSpec::Explicit`].
    pub arrival: Option<u64>,
    /// Core pin (`on <core>`), used by [`PolicySpec::Pinned`].
    pub core: Option<usize>,
}

/// A parsed serve scenario: the chip, the jobs, and the scheduling knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The chip configuration (built through the engine's builder, so it
    /// has already passed validation).
    pub system: SystemConfig,
    /// Model-zoo scale the job networks are built at.
    pub scale: Scale,
    /// Seed for the arrival generator (bursty gaps).
    pub seed: u64,
    /// Arrival pattern.
    pub arrival: ArrivalSpec,
    /// Core-assignment policy.
    pub policy: PolicySpec,
    /// Jobs in declaration order (the FIFO tiebreak for equal arrivals).
    pub jobs: Vec<JobSpec>,
}

/// Parse a serve scenario. `file` is the logical name used in errors.
///
/// # Errors
///
/// [`ConfigError::Parse`] for malformed lines, plus the typed scenario
/// variants: [`ConfigError::UnknownWorkload`],
/// [`ConfigError::UnknownPolicy`], [`ConfigError::BadArrivalPattern`], and
/// [`ConfigError::Inconsistent`] for a chip that fails engine validation
/// or a scenario with no jobs.
pub fn parse_scenario(file: &str, text: &str) -> Result<ScenarioSpec, ConfigError> {
    // `job` lines repeat, so this needs a hand scan rather than `KvFile`
    // (which rejects duplicate keys).
    let mut jobs = Vec::new();
    let mut single: Vec<(String, usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(ConfigError::parse(
                file,
                i + 1,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = k.trim().to_ascii_lowercase();
        let value = v.trim().to_string();
        if key == "job" {
            jobs.push(parse_job(file, i + 1, &value)?);
        } else if let Some((_, prev_line, _)) = single.iter().find(|(k, ..)| *k == key) {
            return Err(ConfigError::parse(
                file,
                i + 1,
                format!("duplicate key `{key}` (first at line {prev_line})"),
            ));
        } else {
            single.push((key, i + 1, value));
        }
    }
    let lookup =
        |key: &str| single.iter().find(|(k, ..)| k == key).map(|(_, l, v)| (*l, v.as_str()));

    let cores = match lookup("cores") {
        None => return Err(ConfigError::parse(file, 0, "missing required key `cores`")),
        Some((line, v)) => v.parse::<usize>().map_err(|_| {
            ConfigError::parse(file, line, format!("`cores` must be an integer, got `{v}`"))
        })?,
    };
    let sharing = match lookup("sharing").map(|(l, v)| (l, v.to_ascii_lowercase())) {
        None => SharingLevel::PlusDwt,
        Some((_, ref v)) if v == "ideal" => SharingLevel::Ideal,
        Some((_, ref v)) if v == "static" => SharingLevel::Static,
        Some((_, ref v)) if v == "+d" => SharingLevel::PlusD,
        Some((_, ref v)) if v == "+dw" => SharingLevel::PlusDw,
        Some((_, ref v)) if v == "+dwt" => SharingLevel::PlusDwt,
        Some((line, v)) => {
            return Err(ConfigError::parse(file, line, format!("unknown sharing level `{v}`")))
        }
    };
    let system = match lookup("preset") {
        None => SystemConfig::bench(cores, sharing),
        Some((_, "bench")) => SystemConfig::bench(cores, sharing),
        Some((_, "cloud")) => SystemConfig::cloud(cores, sharing),
        Some((line, v)) => {
            return Err(ConfigError::parse(file, line, format!("unknown preset `{v}`")))
        }
    };
    // Round-trip through the engine's builder so the chip passes the same
    // validation as every other configuration front end.
    let system =
        system.builder().build().map_err(|e| ConfigError::Inconsistent(format!("{file}: {e}")))?;

    let scale = match lookup("scale") {
        None | Some((_, "bench")) => Scale::Bench,
        Some((_, "full")) => Scale::Full,
        Some((line, v)) => {
            return Err(ConfigError::parse(file, line, format!("unknown scale `{v}`")))
        }
    };
    let seed = match lookup("seed") {
        None => 0,
        Some((line, v)) => v.parse::<u64>().map_err(|_| {
            ConfigError::parse(file, line, format!("`seed` must be an integer, got `{v}`"))
        })?,
    };
    let arrival = match lookup("pattern") {
        None => ArrivalSpec::Explicit,
        Some((line, spec)) => parse_pattern(file, line, spec)?,
    };
    let policy = match lookup("policy").map(|(l, v)| (l, v.to_ascii_lowercase())) {
        None => PolicySpec::FirstFree,
        Some((_, ref v)) if v == "first_free" => PolicySpec::FirstFree,
        Some((_, ref v)) if v == "round_robin" => PolicySpec::RoundRobin,
        Some((_, ref v)) if v == "predictor" => PolicySpec::Predictor,
        Some((_, ref v)) if v == "pinned" => PolicySpec::Pinned,
        Some((line, v)) => {
            return Err(ConfigError::UnknownPolicy { file: file.into(), line, name: v.clone() })
        }
    };

    if jobs.is_empty() {
        return Err(ConfigError::Inconsistent(format!("{file}: scenario has no `job` lines")));
    }
    if policy == PolicySpec::Pinned {
        for (j, job) in jobs.iter().enumerate() {
            match job.core {
                None => {
                    return Err(ConfigError::Inconsistent(format!(
                        "{file}: policy `pinned` but job {j} (`{}`) has no `on <core>`",
                        job.network
                    )))
                }
                Some(c) if c >= cores => {
                    return Err(ConfigError::Inconsistent(format!(
                        "{file}: job {j} pinned to core {c} of a {cores}-core chip"
                    )))
                }
                Some(_) => {}
            }
        }
    }
    // Workload names were validated per line; the scale only changes layer
    // dimensions, never whether a name exists.
    Ok(ScenarioSpec { system, scale, seed, arrival, policy, jobs })
}

/// Load a scenario from a file on disk.
///
/// # Errors
///
/// [`ConfigError::Io`] when the file cannot be read, otherwise everything
/// [`parse_scenario`] reports.
pub fn load_scenario(path: &std::path::Path) -> Result<ScenarioSpec, ConfigError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| ConfigError::Io { path: path.display().to_string(), source })?;
    parse_scenario(&path.display().to_string(), &text)
}

fn parse_job(file: &str, line: usize, value: &str) -> Result<JobSpec, ConfigError> {
    // `<name> [@ <arrival>] [on <core>]`, tokens in either order.
    let mut tokens = value.split_whitespace();
    let Some(name) = tokens.next() else {
        return Err(ConfigError::parse(file, line, "empty `job` line"));
    };
    if zoo::by_name(name, Scale::Bench).is_none() {
        return Err(ConfigError::UnknownWorkload { file: file.into(), line, name: name.into() });
    }
    let mut arrival = None;
    let mut core = None;
    while let Some(tok) = tokens.next() {
        let (slot, what): (&mut Option<u64>, _) = match tok {
            "@" => (&mut arrival, "arrival cycle after `@`"),
            "on" => {
                let Some(c) = tokens.next().and_then(|c| c.parse::<usize>().ok()) else {
                    return Err(ConfigError::parse(file, line, "expected core index after `on`"));
                };
                if core.replace(c).is_some() {
                    return Err(ConfigError::parse(file, line, "duplicate `on <core>`"));
                }
                continue;
            }
            other => {
                return Err(ConfigError::parse(
                    file,
                    line,
                    format!("unexpected token `{other}` in job line"),
                ))
            }
        };
        let Some(v) = tokens.next().and_then(|v| v.parse::<u64>().ok()) else {
            return Err(ConfigError::parse(file, line, format!("expected {what}")));
        };
        if slot.replace(v).is_some() {
            return Err(ConfigError::parse(file, line, "duplicate `@ <arrival>`"));
        }
    }
    Ok(JobSpec { network: name.to_string(), arrival, core })
}

fn parse_pattern(file: &str, line: usize, spec: &str) -> Result<ArrivalSpec, ConfigError> {
    let bad = || ConfigError::BadArrivalPattern { file: file.into(), line, spec: spec.into() };
    let mut parts = spec.split(':');
    match parts.next().map(str::trim) {
        Some("explicit") => {
            if parts.next().is_some() {
                return Err(bad());
            }
            Ok(ArrivalSpec::Explicit)
        }
        Some("fixed") => {
            let inc = parts.next().and_then(|v| v.trim().parse::<u64>().ok()).ok_or_else(bad)?;
            if parts.next().is_some() {
                return Err(bad());
            }
            Ok(ArrivalSpec::FixedIncrement { increment: inc })
        }
        Some("bursty") => {
            let burst =
                parts.next().and_then(|v| v.trim().parse::<usize>().ok()).ok_or_else(bad)?;
            let gap = parts.next().and_then(|v| v.trim().parse::<u64>().ok()).ok_or_else(bad)?;
            if burst == 0 || parts.next().is_some() {
                return Err(bad());
            }
            Ok(ArrivalSpec::Bursty { burst, mean_gap: gap })
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUAD: &str = "\
cores = 4
sharing = +DWT
seed = 7
pattern = fixed:1000
policy = round_robin
job = ncf
job = gpt2
job = yt
job = dlrm
";

    #[test]
    fn parses_a_full_scenario() {
        let s = parse_scenario("quad.scn", QUAD).unwrap();
        assert_eq!(s.system.cores, 4);
        assert_eq!(s.seed, 7);
        assert_eq!(s.arrival, ArrivalSpec::FixedIncrement { increment: 1000 });
        assert_eq!(s.policy, PolicySpec::RoundRobin);
        assert_eq!(s.jobs.len(), 4);
        assert_eq!(s.jobs[1].network, "gpt2");
        assert_eq!(s.jobs[1].arrival, None);
    }

    #[test]
    fn parses_explicit_arrivals_and_pins() {
        let text = "cores = 2\npolicy = pinned\njob = ncf @ 0 on 0\njob = gpt2 @ 500 on 1\n";
        let s = parse_scenario("t", text).unwrap();
        assert_eq!(s.arrival, ArrivalSpec::Explicit);
        assert_eq!(s.jobs[0].core, Some(0));
        assert_eq!(s.jobs[1].arrival, Some(500));
        assert_eq!(s.jobs[1].core, Some(1));
    }

    #[test]
    fn unknown_workload_is_typed() {
        let e = parse_scenario("t", "cores = 1\njob = nope\n").unwrap_err();
        match e {
            ConfigError::UnknownWorkload { line, ref name, .. } => {
                assert_eq!(line, 2);
                assert_eq!(name, "nope");
            }
            other => panic!("expected UnknownWorkload, got {other:?}"),
        }
    }

    #[test]
    fn unknown_policy_is_typed() {
        let e = parse_scenario("t", "cores = 1\npolicy = lifo\njob = ncf\n").unwrap_err();
        assert!(matches!(e, ConfigError::UnknownPolicy { line: 2, .. }), "{e:?}");
    }

    #[test]
    fn bad_pattern_is_typed() {
        for bad in ["poisson:10", "fixed", "bursty:0:100", "bursty:4", "fixed:10:20"] {
            let text = format!("cores = 1\npattern = {bad}\njob = ncf\n");
            let e = parse_scenario("t", &text).unwrap_err();
            assert!(matches!(e, ConfigError::BadArrivalPattern { .. }), "{bad}: {e:?}");
        }
    }

    #[test]
    fn pinned_policy_requires_valid_pins() {
        let e = parse_scenario("t", "cores = 2\npolicy = pinned\njob = ncf\n").unwrap_err();
        assert!(e.to_string().contains("no `on <core>`"));
        let e = parse_scenario("t", "cores = 2\npolicy = pinned\njob = ncf on 5\n").unwrap_err();
        assert!(e.to_string().contains("pinned to core 5"));
    }

    #[test]
    fn no_jobs_rejected() {
        let e = parse_scenario("t", "cores = 2\n").unwrap_err();
        assert!(e.to_string().contains("no `job` lines"));
    }

    #[test]
    fn duplicate_scalar_key_rejected_but_job_repeats() {
        let e = parse_scenario("t", "cores = 1\ncores = 2\njob = ncf\n").unwrap_err();
        assert!(e.to_string().contains("duplicate key `cores`"));
        assert!(parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\n").is_ok());
    }

    #[test]
    fn bursty_pattern_parses() {
        let s = parse_scenario("t", "cores = 1\npattern = bursty:4:2000\njob = ncf\n").unwrap();
        assert_eq!(s.arrival, ArrivalSpec::Bursty { burst: 4, mean_gap: 2000 });
    }
}
