//! Loading a complete run from the five config files (list-file resolution
//! and cross-file consistency checks).

use crate::error::ConfigError;
use crate::parsers::{
    parse_arch, parse_dram, parse_misc, parse_network, parse_npumem, DramFileConfig, MiscConfig,
};
use mnpu_engine::SystemConfig;
use mnpu_mmu::MmuConfig;
use mnpu_model::Network;
use mnpu_systolic::ArchConfig;
use std::fs;
use std::path::{Path, PathBuf};

/// A fully resolved simulation: the chip and one network per core.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The chip configuration derived from the files.
    pub system: SystemConfig,
    /// One network per core, in core order.
    pub networks: Vec<Network>,
}

fn read(path: &Path) -> Result<String, ConfigError> {
    fs::read_to_string(path)
        .map_err(|source| ConfigError::Io { path: path.display().to_string(), source })
}

/// Read a *list file*: one path per line (relative to the list file's
/// directory), `#` comments allowed.
fn read_list(path: &Path) -> Result<Vec<PathBuf>, ConfigError> {
    let text = read(path)?;
    let base = path.parent().unwrap_or(Path::new("."));
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        out.push(base.join(line));
    }
    if out.is_empty() {
        return Err(ConfigError::parse(
            path.display().to_string(),
            0,
            "list file names no entries",
        ));
    }
    Ok(out)
}

/// Combine per-core parses and chip-level files into a [`SystemConfig`].
///
/// # Errors
///
/// [`ConfigError::Inconsistent`] when per-core file counts disagree, the
/// per-core MMU configurations differ, or the channel count is not an even
/// multiple of the core count.
pub fn build_system(
    archs: Vec<ArchConfig>,
    mmus: Vec<MmuConfig>,
    dram_file: DramFileConfig,
    misc: MiscConfig,
) -> Result<SystemConfig, ConfigError> {
    let cores = archs.len();
    if cores == 0 {
        return Err(ConfigError::Inconsistent("no cores configured".into()));
    }
    if mmus.len() != cores {
        return Err(ConfigError::Inconsistent(format!(
            "{} arch configs but {} npumem configs",
            cores,
            mmus.len()
        )));
    }
    if mmus.iter().any(|m| m != &mmus[0]) {
        return Err(ConfigError::Inconsistent(
            "per-core npumem configs must be identical (heterogeneous MMUs are not modeled)".into(),
        ));
    }
    if !dram_file.dram.channels.is_multiple_of(cores) {
        return Err(ConfigError::Inconsistent(format!(
            "{} channels cannot be split evenly over {} cores",
            dram_file.dram.channels, cores
        )));
    }
    let cfg = SystemConfig {
        cores,
        channels_per_core: dram_file.dram.channels / cores,
        arch: archs,
        mmu: mmus.into_iter().next().expect("checked non-empty"),
        dram: dram_file.dram,
        sharing: dram_file.sharing,
        channel_partition: dram_file.channel_partition,
        ptw_partition: misc.ptw_partition,
        translation: misc.translation,
        start_cycles: misc.start_cycles,
        iterations: misc.iterations.max(1),
        trace_window: (misc.trace_window > 0).then_some(misc.trace_window),
        request_log: misc.request_log,
        request_log_cap: None,
        probe: mnpu_engine::ProbeMode::None,
        ptw_bounds: misc.ptw_bounds,
        max_cycles: (misc.max_cycles > 0).then_some(misc.max_cycles),
        noc: dram_file.noc,
        memory: mnpu_engine::MemoryModel::Timing,
    };
    cfg.validate().map_err(|e| ConfigError::Inconsistent(e.to_string()))?;
    Ok(cfg)
}

/// Load a run exactly like the original CLI: per-core *list* files for
/// arch/network/npumem, plus the chip-wide dram and misc files.
///
/// # Errors
///
/// Any I/O, parse, or consistency error with context.
pub fn load_run(
    arch_list: &Path,
    network_list: &Path,
    dram_cfg: &Path,
    npumem_list: &Path,
    misc_cfg: &Path,
) -> Result<RunSpec, ConfigError> {
    let arch_paths = read_list(arch_list)?;
    let net_paths = read_list(network_list)?;
    let mmu_paths = read_list(npumem_list)?;
    if arch_paths.len() != net_paths.len() || arch_paths.len() != mmu_paths.len() {
        return Err(ConfigError::Inconsistent(format!(
            "list lengths disagree: {} arch, {} network, {} npumem",
            arch_paths.len(),
            net_paths.len(),
            mmu_paths.len()
        )));
    }

    let archs = arch_paths.iter().map(|p| parse_arch(&read(p)?)).collect::<Result<Vec<_>, _>>()?;
    let networks = net_paths
        .iter()
        .map(|p| {
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("net").to_string();
            parse_network(&stem, &read(p)?)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mmus = mmu_paths.iter().map(|p| parse_npumem(&read(p)?)).collect::<Result<Vec<_>, _>>()?;
    let dram_file = parse_dram(&read(dram_cfg)?)?;
    let misc = parse_misc(&read(misc_cfg)?)?;

    let system = build_system(archs, mmus, dram_file, misc)?;
    Ok(RunSpec { system, networks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::write_network;
    use mnpu_model::{zoo, Scale};
    use std::fs;

    fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
        let p = dir.join(name);
        fs::write(&p, text).unwrap();
        p
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mnpu_cfg_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    const ARCH: &str = "rows=16\ncols=16\nspm_bytes=1048576\nfreq_mhz=1000\n";
    const NPUMEM: &str = "tlb_entries=512\ntlb_assoc=8\nptw=2\n";

    #[test]
    fn load_dual_core_run_from_files() {
        let d = temp_dir("dual");
        write(&d, "arch0.txt", ARCH);
        write(&d, "arch1.txt", ARCH);
        let arch_list = write(&d, "archs.txt", "arch0.txt\narch1.txt\n");
        write(&d, "ncf.txt", &write_network(&zoo::ncf(Scale::Bench)));
        write(&d, "gpt2.txt", &write_network(&zoo::gpt2(Scale::Bench)));
        let net_list = write(&d, "nets.txt", "# two cores\nncf.txt\ngpt2.txt\n");
        write(&d, "mem0.txt", NPUMEM);
        write(&d, "mem1.txt", NPUMEM);
        let mem_list = write(&d, "mems.txt", "mem0.txt\nmem1.txt\n");
        let dram = write(&d, "dram.cfg", "preset=bench\nchannels=8\nsharing=+DWT\n");
        let misc = write(&d, "misc.cfg", "iterations=1\n");

        let spec = load_run(&arch_list, &net_list, &dram, &mem_list, &misc).unwrap();
        assert_eq!(spec.system.cores, 2);
        assert_eq!(spec.system.channels_per_core, 4);
        assert_eq!(spec.networks[0].name(), "ncf");
        assert_eq!(spec.networks[1].name(), "gpt2");
        assert!(spec.system.validate().is_ok());
    }

    #[test]
    fn mismatched_list_lengths_rejected() {
        let d = temp_dir("mismatch");
        write(&d, "arch0.txt", ARCH);
        let arch_list = write(&d, "archs.txt", "arch0.txt\n");
        write(&d, "ncf.txt", &write_network(&zoo::ncf(Scale::Bench)));
        let net_list = write(&d, "nets.txt", "ncf.txt\nncf.txt\n");
        write(&d, "mem0.txt", NPUMEM);
        let mem_list = write(&d, "mems.txt", "mem0.txt\n");
        let dram = write(&d, "dram.cfg", "channels=4\n");
        let misc = write(&d, "misc.cfg", "");
        let e = load_run(&arch_list, &net_list, &dram, &mem_list, &misc).unwrap_err();
        assert!(e.to_string().contains("disagree"), "{e}");
    }

    #[test]
    fn heterogeneous_mmus_rejected() {
        let archs = vec![parse_arch(ARCH).unwrap(); 2];
        let mut m2 = parse_npumem(NPUMEM).unwrap();
        m2.tlb_entries_per_core = 1024;
        let mmus = vec![parse_npumem(NPUMEM).unwrap(), m2];
        let dram = crate::parsers::parse_dram("channels=8").unwrap();
        let misc = crate::parsers::parse_misc("").unwrap();
        let e = build_system(archs, mmus, dram, misc).unwrap_err();
        assert!(e.to_string().contains("identical"), "{e}");
    }

    #[test]
    fn indivisible_channels_rejected() {
        let archs = vec![parse_arch(ARCH).unwrap(); 3];
        let mmus = vec![parse_npumem(NPUMEM).unwrap(); 3];
        let dram = crate::parsers::parse_dram("channels=8").unwrap();
        let misc = crate::parsers::parse_misc("").unwrap();
        assert!(build_system(archs, mmus, dram, misc).is_err());
    }

    #[test]
    fn missing_file_reports_path() {
        let d = temp_dir("missing");
        let arch_list = write(&d, "archs.txt", "nonexistent.txt\n");
        let e = read(&read_list(&arch_list).unwrap()[0]).unwrap_err();
        assert!(e.to_string().contains("nonexistent.txt"));
    }
}
