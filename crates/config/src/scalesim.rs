//! SCALE-Sim topology import.
//!
//! The original mNPUsim's model architectures "are based on SCALE-Sim"
//! (appendix §3.5), whose topology files are CSVs of the form
//!
//! ```text
//! Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
//! Conv1, 227, 227, 11, 11, 3, 96, 4,
//! FC6, 1, 1, 9216, 1, 1, 4096, 1,
//! ```
//!
//! This module converts such files into [`mnpu_model::Network`]s so
//! published SCALE-Sim topologies drop straight into the simulator. Rows
//! with a 1×1 IFMAP are interpreted as fully-connected layers
//! (`m = 1, k = filter_h * filter_w * channels, n = num_filters`), matching
//! SCALE-Sim's own convention for FC layers.

use crate::error::ConfigError;
use mnpu_model::{ConvSpec, GemmSpec, Layer, LayerKind, Network};

/// Parse a SCALE-Sim topology CSV into a network named `name`.
///
/// A header line is detected (first field of the first row not numeric in
/// column 2) and skipped; trailing commas and blank lines are tolerated,
/// `#` starts a comment.
///
/// # Errors
///
/// [`ConfigError::Parse`] with line context for malformed rows.
pub fn parse_scalesim(name: &str, text: &str) -> Result<Network, ConfigError> {
    let file = format!("scalesim({name})");
    let mut layers = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 8 {
            return Err(ConfigError::parse(
                &file,
                i + 1,
                format!("expected 8 columns (name + 7 dims), got {}", fields.len()),
            ));
        }
        // Header row: second column not numeric.
        if fields[1].parse::<u64>().is_err() {
            if layers.is_empty() {
                continue;
            }
            return Err(ConfigError::parse(&file, i + 1, "non-numeric dimension after data rows"));
        }
        let num = |idx: usize| -> Result<u64, ConfigError> {
            fields[idx].parse().map_err(|_| {
                ConfigError::parse(
                    &file,
                    i + 1,
                    format!("column {} must be an integer, got `{}`", idx + 1, fields[idx]),
                )
            })
        };
        let (ifh, ifw, fh, fw, ch, nf, stride) =
            (num(1)?, num(2)?, num(3)?, num(4)?, num(5)?, num(6)?, num(7)?.max(1));
        let lname = fields[0].to_string();
        if ifh == 1 && ifw == 1 {
            // SCALE-Sim FC convention: filter dims x channels = fan-in.
            layers.push(Layer::new(
                lname,
                LayerKind::Gemm(GemmSpec::new(1, (fh * fw * ch).max(1), nf.max(1))),
                1,
            ));
        } else {
            layers.push(Layer::new(
                lname,
                LayerKind::Conv(ConvSpec {
                    in_h: ifh,
                    in_w: ifw,
                    in_c: ch.max(1),
                    out_c: nf.max(1),
                    k_h: fh.min(ifh),
                    k_w: fw.min(ifw),
                    stride,
                    padding: 0,
                }),
                1,
            ));
        }
    }
    if layers.is_empty() {
        return Err(ConfigError::parse(&file, 0, "topology has no layers"));
    }
    Ok(Network::new(name, layers))
}

/// Serialize a network into SCALE-Sim topology format (convolutions and
/// GEMMs only; embedding layers are rejected because SCALE-Sim has no such
/// concept). Lossy for GEMMs with `m > 1`: SCALE-Sim's FC convention always
/// encodes a single output row, so only `k` and `n` survive the round trip
/// (and convolution padding is not representable at all).
///
/// # Errors
///
/// [`ConfigError::Inconsistent`] when the network contains an embedding
/// layer.
pub fn write_scalesim(net: &Network) -> Result<String, ConfigError> {
    let mut out = String::from(
        "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,\n",
    );
    for l in net.iter() {
        match *l.kind() {
            LayerKind::Conv(c) => {
                out.push_str(&format!(
                    "{}, {}, {}, {}, {}, {}, {}, {},\n",
                    l.name(),
                    c.in_h,
                    c.in_w,
                    c.k_h,
                    c.k_w,
                    c.in_c,
                    c.out_c,
                    c.stride
                ));
            }
            LayerKind::Gemm(g) => {
                out.push_str(&format!("{}, 1, 1, {}, 1, 1, {}, 1,\n", l.name(), g.k, g.n));
            }
            LayerKind::Embedding(_) => {
                return Err(ConfigError::Inconsistent(format!(
                    "layer {} is an embedding gather; SCALE-Sim topologies cannot express it",
                    l.name()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_model::{zoo, Scale};

    const ALEXNET_HEAD: &str = "\
Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
Conv1, 227, 227, 11, 11, 3, 96, 4,
Conv2, 27, 27, 5, 5, 96, 256, 1,
FC6, 1, 1, 9216, 1, 1, 4096, 1,
";

    #[test]
    fn parses_scalesim_csv_with_header() {
        let net = parse_scalesim("alex_head", ALEXNET_HEAD).unwrap();
        assert_eq!(net.num_layers(), 3);
        let LayerKind::Conv(c) = *net.layers()[0].kind() else { panic!() };
        assert_eq!((c.in_h, c.k_h, c.in_c, c.out_c, c.stride), (227, 11, 3, 96, 4));
        let LayerKind::Gemm(g) = *net.layers()[2].kind() else { panic!() };
        assert_eq!((g.m, g.k, g.n), (1, 9216, 4096));
    }

    #[test]
    fn headerless_and_comment_tolerant() {
        let net = parse_scalesim("t", "# topology\nConv1, 32, 32, 3, 3, 8, 16, 1,\n\n").unwrap();
        assert_eq!(net.num_layers(), 1);
    }

    #[test]
    fn malformed_rows_report_lines() {
        let e =
            parse_scalesim("t", "Conv1, 32, 32, 3, 3, 8, 16, 1,\nConv2, a, 32, 3, 3, 8, 16, 1,")
                .unwrap_err();
        assert!(e.to_string().contains(":2"), "{e}");
        assert!(parse_scalesim("t", "Conv1, 32, 32").is_err(), "too few columns");
        assert!(parse_scalesim("t", "").is_err(), "empty topology");
    }

    #[test]
    fn conv_and_gemm_zoo_round_trips() {
        // CNNs survive a write/parse round trip with identical timing-
        // relevant dimensions (padding is not representable, so compare
        // the lowered GEMM of padding-free layers only).
        for name in ["yt", "alex", "gpt2", "sfrnn"] {
            let net = zoo::by_name(name, Scale::Bench).unwrap();
            let text = write_scalesim(&net).unwrap();
            let back = parse_scalesim(name, &text).unwrap();
            assert_eq!(back.num_layers(), net.num_layers(), "{name}");
            for (a, b) in net.iter().zip(back.iter()) {
                if let (LayerKind::Gemm(x), LayerKind::Gemm(y)) = (a.kind(), b.kind()) {
                    // The FC convention is lossy in m (see write_scalesim).
                    assert_eq!((x.k, x.n), (y.k, y.n), "{name}/{}", a.name());
                }
            }
        }
    }

    #[test]
    fn embeddings_cannot_be_exported() {
        let net = zoo::dlrm(Scale::Bench);
        assert!(write_scalesim(&net).is_err());
    }

    #[test]
    fn imported_topology_simulates() {
        use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
        let net = parse_scalesim("alex_head", ALEXNET_HEAD).unwrap();
        let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
        let r = Simulation::execute_networks(&cfg, &[net]);
        assert!(r.cores[0].cycles > 0);
    }
}
