//! Result-file emission matching the original simulator's output layout.
//!
//! The original writes, per core, four summary files under
//! `<result_path>/result/` (appendix §7.4):
//!
//! * `avg_cycle_<arch><idx>_<net><idx>.txt` — execution cycles;
//! * `execution_cycle_…` — per-layer cycles;
//! * `memory_footprint_…` — workload footprint in bytes;
//! * `utilization_…` — PE utilization.

use mnpu_engine::RunReport;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The four per-core summary file names for core `idx` running `net` on an
/// architecture labeled `arch`.
pub fn result_file_names(arch: &str, net: &str, idx: usize) -> [String; 4] {
    [
        format!("avg_cycle_{arch}{idx}_{net}{idx}.txt"),
        format!("execution_cycle_{arch}{idx}_{net}{idx}.txt"),
        format!("memory_footprint_{arch}{idx}_{net}{idx}.txt"),
        format!("utilization_{arch}{idx}_{net}{idx}.txt"),
    ]
}

/// Write the per-core result files under `<result_path>/result/`, returning
/// the paths written. `arch_label` names the architecture in the file names
/// (the original uses the arch config's name, e.g. `arch_tpu_small`).
///
/// # Errors
///
/// Propagates any filesystem error.
pub fn write_results(
    result_path: &Path,
    arch_label: &str,
    report: &RunReport,
) -> io::Result<Vec<PathBuf>> {
    let dir = result_path.join("result");
    fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    for (idx, core) in report.cores.iter().enumerate() {
        let [avg, exec, footprint, util] = result_file_names(arch_label, &core.workload, idx);

        let p = dir.join(avg);
        fs::write(&p, format!("{}\n", core.cycles))?;
        written.push(p);

        let mut lines = String::new();
        for (layer, cycles) in &core.layer_cycles {
            lines.push_str(&format!("{layer} {cycles}\n"));
        }
        lines.push_str(&format!("total {}\n", core.cycles));
        let p = dir.join(exec);
        fs::write(&p, lines)?;
        written.push(p);

        let p = dir.join(footprint);
        fs::write(&p, format!("{}\n", core.footprint_bytes))?;
        written.push(p);

        let p = dir.join(util);
        fs::write(&p, format!("{:.6}\n", core.pe_utilization))?;
        written.push(p);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
    use mnpu_model::{zoo, Scale};

    #[test]
    fn file_names_follow_convention() {
        let names = result_file_names("arch_tpu", "ncf", 1);
        assert_eq!(names[0], "avg_cycle_arch_tpu1_ncf1.txt");
        assert_eq!(names[3], "utilization_arch_tpu1_ncf1.txt");
    }

    #[test]
    fn writes_four_files_per_core() {
        let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
        let nets = [zoo::ncf(Scale::Bench), zoo::ncf(Scale::Bench)];
        let report = Simulation::execute_networks(&cfg, &nets);
        let dir = std::env::temp_dir().join(format!("mnpu_results_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let written = write_results(&dir, "bench", &report).unwrap();
        assert_eq!(written.len(), 8);
        // avg_cycle content round-trips the cycle count.
        let avg: u64 = fs::read_to_string(&written[0]).unwrap().trim().parse().unwrap();
        assert_eq!(avg, report.cores[0].cycles);
        // execution_cycle lists every layer plus the total.
        let exec = fs::read_to_string(&written[1]).unwrap();
        assert_eq!(exec.lines().count(), report.cores[0].layer_cycles.len() + 1);
        assert!(exec.contains("total"));
        // Per-layer cycles sum to at most the total execution time.
        let sum: u64 = report.cores[0].layer_cycles.iter().map(|(_, c)| c).sum();
        assert!(sum <= report.cores[0].cycles + 1);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Write the optional request log in the original's `dramsim_output` style:
/// one file per log kind (`tlb<core>.log`, `tlb<core>_ptw.log`,
/// `dram.log`), each line `cycle address`.
///
/// Returns the paths written (empty when the report carries no log).
///
/// # Errors
///
/// Propagates any filesystem error.
pub fn write_request_logs(result_path: &Path, report: &RunReport) -> io::Result<Vec<PathBuf>> {
    use mnpu_engine::LogKind;
    if report.request_log.is_empty() {
        return Ok(Vec::new());
    }
    let dir = result_path.join("dramsim_output");
    fs::create_dir_all(&dir)?;
    let cores = report.cores.len();

    let mut tlb = vec![String::new(); cores];
    let mut ptw = vec![String::new(); cores];
    let mut dram = String::new();
    for e in &report.request_log {
        match e.kind {
            LogKind::TlbHit => tlb[e.core].push_str(&format!("{} {:#x} hit\n", e.cycle, e.addr)),
            LogKind::TlbMiss => tlb[e.core].push_str(&format!("{} {:#x} miss\n", e.cycle, e.addr)),
            LogKind::WalkStart => {
                ptw[e.core].push_str(&format!("{} {:#x} start\n", e.cycle, e.addr))
            }
            LogKind::WalkDone => ptw[e.core].push_str(&format!("{} {:#x} done\n", e.cycle, e.addr)),
            LogKind::DramReadDone => dram.push_str(&format!("{} core{} read\n", e.cycle, e.core)),
            LogKind::DramWriteDone => dram.push_str(&format!("{} core{} write\n", e.cycle, e.core)),
        }
    }

    let mut written = Vec::new();
    for c in 0..cores {
        let p = dir.join(format!("tlb{c}.log"));
        fs::write(&p, &tlb[c])?;
        written.push(p);
        let p = dir.join(format!("tlb{c}_ptw.log"));
        fs::write(&p, &ptw[c])?;
        written.push(p);
    }
    let p = dir.join("dram.log");
    fs::write(&p, dram)?;
    written.push(p);
    Ok(written)
}

/// Write the SW request generator's intermediate results (the original's
/// `intermediate` directory): per layer, one line per tile of the form
/// `(compute cycles), (list of span addresses)`.
///
/// # Errors
///
/// Propagates any filesystem error.
pub fn write_intermediate(
    result_path: &Path,
    trace: &mnpu_systolic::WorkloadTrace,
) -> io::Result<PathBuf> {
    let dir = result_path.join("intermediate");
    fs::create_dir_all(&dir)?;
    let mut out = String::new();
    for layer in trace.layers() {
        out.push_str(&format!("# layer {}\n", layer.name));
        for tile in &layer.tiles {
            out.push_str(&format!("{}", tile.compute_cycles));
            for s in tile.loads.iter().chain(&tile.stores) {
                out.push_str(&format!(", {:#x}+{}", s.addr, s.bytes));
            }
            out.push('\n');
        }
    }
    let p = dir.join(format!("{}_tiles.txt", trace.name()));
    fs::write(&p, out)?;
    Ok(p)
}

#[cfg(test)]
mod log_tests {
    use super::*;
    use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
    use mnpu_model::{zoo, Scale};
    use mnpu_systolic::WorkloadTrace;

    #[test]
    fn request_logs_written_per_core() {
        let mut cfg = SystemConfig::bench(1, SharingLevel::Ideal);
        cfg.request_log = true;
        let r = Simulation::execute_networks(&cfg, &[zoo::ncf(Scale::Bench)]);
        let dir = std::env::temp_dir().join(format!("mnpu_logs_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let files = write_request_logs(&dir, &r).unwrap();
        assert_eq!(files.len(), 3, "tlb0, tlb0_ptw, dram");
        let tlb = fs::read_to_string(&files[0]).unwrap();
        assert!(tlb.lines().count() as u64 >= r.cores[0].mmu.tlb_misses);
        assert!(tlb.contains("miss"));
        let dram_log = fs::read_to_string(files.last().unwrap()).unwrap();
        assert_eq!(dram_log.lines().count() as u64, r.cores[0].traffic_bytes / 64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_log_no_files() {
        let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
        let r = Simulation::execute_networks(&cfg, &[zoo::ncf(Scale::Bench)]);
        let dir = std::env::temp_dir().join("mnpu_logs_none");
        assert!(write_request_logs(&dir, &r).unwrap().is_empty());
    }

    #[test]
    fn intermediate_lists_every_tile() {
        let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
        let trace = WorkloadTrace::generate(&zoo::ncf(Scale::Bench), &cfg.arch[0]);
        let dir = std::env::temp_dir().join(format!("mnpu_imm_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let p = write_intermediate(&dir, &trace).unwrap();
        let text = fs::read_to_string(&p).unwrap();
        let tile_lines = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(tile_lines, trace.total_tiles());
        assert_eq!(text.lines().filter(|l| l.starts_with("# layer")).count(), trace.layers().len());
        let _ = fs::remove_dir_all(&dir);
    }
}
