//! Regenerate the `configs/network/*.txt` files from the built-in zoo.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p mnpu-config --example export_nets
//! ```

fn main() {
    std::fs::create_dir_all("configs/network").expect("create configs/network");
    for net in mnpu_model::zoo::all(mnpu_model::Scale::Bench) {
        let path = format!("configs/network/{}.txt", net.name());
        std::fs::write(&path, mnpu_config::write_network(&net)).expect("write network config");
        println!("wrote {path}");
    }
}
